// Synthetic per-CPU HPC event databases.
//
// EventDatabase::generate(CpuModel) builds the full monitorable event list
// for one processor, reproducing the paper's scale and taxonomy:
//   - Table I event totals (Intel Xeon E5: 6166/6172 events, 14 differing
//     within the family; AMD EPYC: 1903 events, 0 differing),
//   - Table II type distribution (H/S/HC/T/R/O percentages) and
//     guest-visibility fractions per type (what survives warm-up profiling),
//   - the concrete events the paper names (RETIRED_UOPS, LS_DISPATCH,
//     MAB_ALLOCATION_BY_PIPE, DATA_CACHE_REFILLS_FROM_SYSTEM,
//     RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR, HW_CACHE_L1D:WRITE on AMD;
//     MEM_LOAD_UOPS_RETIRED:L1_HIT on Intel) with semantically faithful
//     response vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "isa/spec.hpp"
#include "pmu/event_model.hpp"

namespace aegis::pmu {

class EventDatabase {
 public:
  /// Deterministically builds the event list for the given CPU. Events of
  /// CPUs in the same family are near-identical (Table I).
  static EventDatabase generate(isa::CpuModel model);

  isa::CpuModel model() const noexcept { return model_; }
  const std::vector<EventDescriptor>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  const EventDescriptor& by_id(std::uint32_t id) const;
  std::optional<std::uint32_t> find(std::string_view name) const noexcept;

  /// Count of events per Table II type.
  std::array<std::size_t, kNumEventTypes> count_by_type() const noexcept;

  /// Number of hardware counter registers available for concurrent
  /// monitoring (paper: 4 on both testbeds).
  static constexpr std::size_t kNumCounters = 4;

 private:
  isa::CpuModel model_{};
  std::vector<EventDescriptor> events_;
};

/// Names of the four events the paper's attacks monitor on AMD (chosen by
/// the Section VIII-A ranking; we use them as defaults everywhere).
inline constexpr std::array<std::string_view, 4> kAmdAttackEvents = {
    "RETIRED_UOPS",
    "LS_DISPATCH",
    "MAB_ALLOCATION_BY_PIPE",
    "DATA_CACHE_REFILLS_FROM_SYSTEM",
};

}  // namespace aegis::pmu
