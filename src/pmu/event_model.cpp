#include "pmu/event_model.hpp"

namespace aegis::pmu {

std::string_view to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kHardware: return "Hardware";
    case EventType::kSoftware: return "Software";
    case EventType::kHwCache: return "Hardware Cache";
    case EventType::kTracepoint: return "Tracepoint";
    case EventType::kRawCpu: return "Raw CPU";
    case EventType::kOther: return "Other";
    case EventType::kCount: break;
  }
  return "?";
}

std::string_view short_code(EventType t) noexcept {
  switch (t) {
    case EventType::kHardware: return "H";
    case EventType::kSoftware: return "S";
    case EventType::kHwCache: return "HC";
    case EventType::kTracepoint: return "T";
    case EventType::kRawCpu: return "R";
    case EventType::kOther: return "O";
    case EventType::kCount: break;
  }
  return "?";
}

ExecutionStats& ExecutionStats::operator+=(const ExecutionStats& o) noexcept {
  for (std::size_t i = 0; i < class_counts.size(); ++i) {
    class_counts.at_index(i) += o.class_counts.at_index(i);
  }
  uops += o.uops;
  l1_misses += o.l1_misses;
  llc_misses += o.llc_misses;
  l1_writes += o.l1_writes;
  branch_mispredicts += o.branch_mispredicts;
  mem_reads += o.mem_reads;
  mem_writes += o.mem_writes;
  interrupts += o.interrupts;
  cycles += o.cycles;
  return *this;
}

double ExecutionStats::total_instructions() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < class_counts.size(); ++i) {
    total += class_counts.at_index(i);
  }
  return total;
}

double EventResponse::expected_count(const ExecutionStats& s) const noexcept {
  double count = 0.0;
  for (std::size_t i = 0; i < class_weight.size(); ++i) {
    count += static_cast<double>(class_weight.at_index(i)) * s.class_counts.at_index(i);
  }
  count += per_uop * s.uops;
  count += per_l1_miss * s.l1_misses;
  count += per_llc_miss * s.llc_misses;
  count += per_l1_write * s.l1_writes;
  count += per_branch_miss * s.branch_mispredicts;
  count += per_mem_read * s.mem_reads;
  count += per_mem_write * s.mem_writes;
  count += per_cycle * s.cycles;
  count += per_interrupt * s.interrupts;
  // Responses with negative coefficients (e.g. L1_HIT = reads - misses)
  // never count below zero on real hardware.
  return count < 0.0 ? 0.0 : count;
}

bool EventResponse::guest_visible() const noexcept {
  for (std::size_t i = 0; i < class_weight.size(); ++i) {
    if (class_weight.at_index(i) != 0.0f) return true;
  }
  // per_interrupt intentionally excluded: interrupts are host-scheduled
  // noise (C2), not guest activity — see the invariant note in the header.
  return per_uop != 0.0f || per_l1_miss != 0.0f || per_llc_miss != 0.0f ||
         per_l1_write != 0.0f || per_branch_miss != 0.0f ||
         per_mem_read != 0.0f || per_mem_write != 0.0f || per_cycle != 0.0f;
}

}  // namespace aegis::pmu
