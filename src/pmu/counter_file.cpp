#include "pmu/counter_file.hpp"

#include <cmath>
#include <stdexcept>

namespace aegis::pmu {

CounterRegisterFile::CounterRegisterFile(const EventDatabase& db,
                                         std::uint64_t noise_seed)
    : db_(&db), rng_(noise_seed) {}

void CounterRegisterFile::program(std::vector<std::uint32_t> event_ids) {
  for (std::uint32_t id : event_ids) {
    (void)db_->by_id(id);  // validate
  }
  ids_ = std::move(event_ids);
  slots_.clear();
  slots_.reserve(ids_.size());
  for (std::uint32_t id : ids_) slots_.push_back(Slot{id, 0.0, 0});
  active_group_ = 0;
  total_slices_ = 0;
}

void CounterRegisterFile::reset() noexcept {
  for (auto& s : slots_) {
    s.count = 0.0;
    s.active_slices = 0;
  }
  active_group_ = 0;
  total_slices_ = 0;
}

std::size_t CounterRegisterFile::group_count() const noexcept {
  const std::size_t c = EventDatabase::kNumCounters;
  return slots_.empty() ? 1 : (slots_.size() + c - 1) / c;
}

bool CounterRegisterFile::slot_active(std::size_t slot_index) const noexcept {
  return slot_index / EventDatabase::kNumCounters == active_group_;
}

std::size_t CounterRegisterFile::slot_of(std::uint32_t event_id) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].event_id == event_id) return i;
  }
  throw std::invalid_argument("CounterRegisterFile: event not programmed");
}

void CounterRegisterFile::accumulate(const ExecutionStats& stats) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slot_active(i)) continue;
    const EventResponse& r = db_->by_id(slots_[i].event_id).response;
    const double expected = r.expected_count(stats);
    double noisy = expected;
    if (r.noise_rel > 0.0f && expected > 0.0) {
      noisy += rng_.normal(0.0, r.noise_rel * expected);
    }
    if (noisy < 0.0) noisy = 0.0;
    slots_[i].count += noisy;
  }
}

void CounterRegisterFile::end_slice() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slot_active(i)) continue;
    const EventResponse& r = db_->by_id(slots_[i].event_id).response;
    double background = 0.0;
    if (r.host_background > 0.0f) {
      background += static_cast<double>(
          rng_.poisson(static_cast<double>(r.host_background)));
    }
    if (r.noise_abs > 0.0f) {
      background += std::abs(rng_.normal(0.0, r.noise_abs));
    }
    slots_[i].count += background;
    ++slots_[i].active_slices;
  }
  ++total_slices_;
  if (multiplexed()) {
    active_group_ = (active_group_ + 1) % group_count();
  }
}

void CounterRegisterFile::tick(const ExecutionStats& stats) {
  accumulate(stats);
  end_slice();
}

double CounterRegisterFile::read(std::uint32_t event_id) const {
  const Slot& s = slots_[slot_of(event_id)];
  if (!multiplexed()) return s.count;
  if (s.active_slices == 0) return 0.0;
  // perf's enabled/running scaling: extrapolate to the full window.
  return s.count * static_cast<double>(total_slices_) /
         static_cast<double>(s.active_slices);
}

double CounterRegisterFile::read_raw(std::uint32_t event_id) const {
  return slots_[slot_of(event_id)].count;
}

std::vector<double> CounterRegisterFile::read_all() const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) out.push_back(read(s.event_id));
  return out;
}

}  // namespace aegis::pmu
