#include "pmu/counter_file.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace aegis::pmu {

namespace {

std::atomic<AccumulateEngine> g_default_engine{AccumulateEngine::kBatched};

/// What a requested engine runs as after the once-per-program dispatch:
/// unsupported pins (CPU without the ISA, or AEGIS_FORCE_SCALAR=1) degrade
/// to scalar rather than crash, and resolved_isa() reports the truth.
simd::SimdIsa resolve_isa(AccumulateEngine engine) noexcept {
  switch (engine) {
    case AccumulateEngine::kBatched:
      return simd::best_isa();
    case AccumulateEngine::kAvx2:
      return simd::supported(simd::SimdIsa::kAvx2) ? simd::SimdIsa::kAvx2
                                                   : simd::SimdIsa::kScalar;
    case AccumulateEngine::kAvx512:
      return simd::supported(simd::SimdIsa::kAvx512) ? simd::SimdIsa::kAvx512
                                                     : simd::SimdIsa::kScalar;
    case AccumulateEngine::kScalar:
    case AccumulateEngine::kReference:
      break;
  }
  return simd::SimdIsa::kScalar;
}

}  // namespace

void CounterRegisterFile::set_default_engine(AccumulateEngine engine) noexcept {
  g_default_engine.store(engine, std::memory_order_relaxed);
}

AccumulateEngine CounterRegisterFile::default_engine() noexcept {
  return g_default_engine.load(std::memory_order_relaxed);
}

CounterRegisterFile::CounterRegisterFile(const EventDatabase& db,
                                         std::uint64_t noise_seed)
    : db_(&db),
      rng_(noise_seed),
      engine_(default_engine()),
      accumulate_calls_(telemetry::Registry::global().metrics().counter(
          "aegis_pmu_accumulate_total")),
      engine_isa_gauge_(telemetry::Registry::global().metrics().gauge(
          "aegis_pmu_engine_isa")) {
  resolve_dispatch();
}

void CounterRegisterFile::resolve_dispatch() noexcept {
  resolved_isa_ = resolve_isa(engine_);
  group_kernel_ = resolved_isa_ == simd::SimdIsa::kScalar
                      ? nullptr
                      : simd::expected_group_kernel(resolved_isa_);
  engine_isa_gauge_.set(static_cast<double>(resolved_isa_));
}

void CounterRegisterFile::program(std::vector<std::uint32_t> event_ids) {
  for (std::uint32_t id : event_ids) {
    (void)db_->by_id(id);  // validate before touching any state
  }
  matrix_.program(*db_, event_ids);
  ids_ = std::move(event_ids);
  slots_.clear();
  slots_.reserve(ids_.size());
  slot_index_.clear();
  slot_index_.reserve(ids_.size());
  for (std::uint32_t id : ids_) {
    // First occurrence wins for duplicate ids, matching the old scan.
    slot_index_.emplace(id, static_cast<std::uint32_t>(slots_.size()));
    slots_.push_back(Slot{id, 0.0, 0});
  }
  active_group_ = 0;
  total_slices_ = 0;
  resolve_dispatch();
}

void CounterRegisterFile::reset() noexcept {
  for (auto& s : slots_) {
    s.count = 0.0;
    s.active_slices = 0;
  }
  active_group_ = 0;
  total_slices_ = 0;
}

std::size_t CounterRegisterFile::group_count() const noexcept {
  const std::size_t c = EventDatabase::kNumCounters;
  return slots_.empty() ? 1 : (slots_.size() + c - 1) / c;
}

bool CounterRegisterFile::slot_active(std::size_t slot_index) const noexcept {
  return slot_index / EventDatabase::kNumCounters == active_group_;
}

std::pair<std::size_t, std::size_t> CounterRegisterFile::active_range()
    const noexcept {
  const std::size_t first = active_group_ * EventDatabase::kNumCounters;
  const std::size_t last =
      std::min(slots_.size(), first + EventDatabase::kNumCounters);
  return {first, last};
}

std::size_t CounterRegisterFile::slot_of(std::uint32_t event_id) const {
  const auto it = slot_index_.find(event_id);
  if (it == slot_index_.end()) {
    throw std::invalid_argument("CounterRegisterFile: event not programmed");
  }
  return it->second;
}

// aegis-lint: noalloc
void CounterRegisterFile::accumulate(const ExecutionStats& stats) {
  accumulate_calls_.inc();
  if (engine_ == AccumulateEngine::kReference) {
    accumulate_reference(stats);
  } else {
    accumulate_batched(stats);
  }
}

// aegis-lint: noalloc
// aegis-rng: stream(counter-file-accumulate-batched)
void CounterRegisterFile::accumulate_batched(const ExecutionStats& stats) {
  const auto [first, last] = active_range();
  if (first >= last) return;
  double features[kStatsFeatureDim];
  flatten_stats(stats, features);
  if (group_kernel_ != nullptr) {
    // SIMD fast path: one kernel call computes the active group's 4
    // expected counts from the blocked-sparse layout (bit-identical to the
    // dense loop below); the noise draws then run in the identical per-slot
    // order so the RNG stream is untouched by the engine choice.
    alignas(32) double lanes[ResponseMatrix::kLanes];
    const ResponseMatrix::GroupView view = matrix_.group_view(active_group_);
    group_kernel_(view.lane_coeff, view.col_feat, view.cols, features, lanes);
    for (std::size_t i = first; i < last; ++i) {
      const double raw = lanes[i - first];
      const double expected = raw < 0.0 ? 0.0 : raw;  // expected()'s clamp
      double noisy = expected;
      const float noise_rel = matrix_.noise_rel(i);
      if (noise_rel > 0.0f && expected > 0.0) {
        noisy += rng_.normal(0.0, noise_rel * expected);
      }
      if (noisy < 0.0) noisy = 0.0;
      slots_[i].count += noisy;
    }
    return;
  }
  for (std::size_t i = first; i < last; ++i) {
    const double expected = matrix_.expected(i, features);
    double noisy = expected;
    const float noise_rel = matrix_.noise_rel(i);
    if (noise_rel > 0.0f && expected > 0.0) {
      noisy += rng_.normal(0.0, noise_rel * expected);
    }
    if (noisy < 0.0) noisy = 0.0;
    slots_[i].count += noisy;
  }
}

// The retained pre-batching implementation: per-slot EventDatabase::by_id
// with scattered coefficient loads, over every slot. Kept verbatim as the
// baseline the equivalence suite and bench_hot_path compare against.
// aegis-lint: noalloc
// aegis-rng: stream(counter-file-accumulate-reference)
void CounterRegisterFile::accumulate_reference(const ExecutionStats& stats) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slot_active(i)) continue;
    const EventResponse& r = db_->by_id(slots_[i].event_id).response;
    const double expected = r.expected_count(stats);
    double noisy = expected;
    if (r.noise_rel > 0.0f && expected > 0.0) {
      noisy += rng_.normal(0.0, r.noise_rel * expected);
    }
    if (noisy < 0.0) noisy = 0.0;
    slots_[i].count += noisy;
  }
}

void CounterRegisterFile::end_slice() {
  if (engine_ == AccumulateEngine::kReference) {
    end_slice_reference();
  } else {
    end_slice_batched();
  }
  ++total_slices_;
  if (multiplexed()) {
    active_group_ = (active_group_ + 1) % group_count();
  }
}

// aegis-lint: noalloc
// aegis-rng: stream(counter-file-end-slice-batched)
void CounterRegisterFile::end_slice_batched() {
  const auto [first, last] = active_range();
  if (first >= last) return;
  if (!matrix_.group_has_slice_noise(active_group_)) {
    // Noise-free group (precomputed at program() time): the sampler's
    // end-of-slice work collapses to the active-slice bookkeeping.
    for (std::size_t i = first; i < last; ++i) ++slots_[i].active_slices;
    return;
  }
  for (std::size_t i = first; i < last; ++i) {
    double background = 0.0;
    const float host_background = matrix_.host_background(i);
    if (host_background > 0.0f) {
      background += static_cast<double>(
          rng_.poisson(static_cast<double>(host_background)));
    }
    const float noise_abs = matrix_.noise_abs(i);
    if (noise_abs > 0.0f) {
      background += std::abs(rng_.normal(0.0, noise_abs));
    }
    slots_[i].count += background;
    ++slots_[i].active_slices;
  }
}

// aegis-lint: noalloc
// aegis-rng: stream(counter-file-end-slice-reference)
void CounterRegisterFile::end_slice_reference() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slot_active(i)) continue;
    const EventResponse& r = db_->by_id(slots_[i].event_id).response;
    double background = 0.0;
    if (r.host_background > 0.0f) {
      background += static_cast<double>(
          rng_.poisson(static_cast<double>(r.host_background)));
    }
    if (r.noise_abs > 0.0f) {
      background += std::abs(rng_.normal(0.0, r.noise_abs));
    }
    slots_[i].count += background;
    ++slots_[i].active_slices;
  }
}

void CounterRegisterFile::tick(const ExecutionStats& stats) {
  accumulate(stats);
  end_slice();
}

double CounterRegisterFile::read_slot(std::size_t slot_index) const noexcept {
  const Slot& s = slots_[slot_index];
  if (!multiplexed()) return s.count;
  if (s.active_slices == 0) return 0.0;
  // perf's enabled/running scaling: extrapolate to the full window.
  return s.count * static_cast<double>(total_slices_) /
         static_cast<double>(s.active_slices);
}

double CounterRegisterFile::read(std::uint32_t event_id) const {
  return read_slot(slot_of(event_id));
}

double CounterRegisterFile::read_raw(std::uint32_t event_id) const {
  return slots_[slot_of(event_id)].count;
}

std::vector<double> CounterRegisterFile::read_all() const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) out.push_back(read_slot(i));
  return out;
}

}  // namespace aegis::pmu
