// Injectable clocks for the telemetry plane.
//
// Aegis bans wall-clock reads outside reporting-only sites (aegis-lint
// banned-clock): results must be a pure function of config seeds. Telemetry
// timestamps therefore flow through a TimeSource the embedder picks:
//   * TickTimeSource   — default. A monotonic atomic tick per read; spans
//     get deterministic ordinal timestamps with no wall-clock dependency.
//   * ManualTimeSource — test clock, advanced explicitly; exporter golden
//     tests pin byte-stable output with it.
//   * CallbackTimeSource — adapts an external monotonic counter, e.g. the
//     simulator's virtual clock (vm.slices_run() * slice_ns) without a
//     telemetry -> sim dependency.
//   * WallTimeSource   — steady_clock for benches and the service daemon,
//     where trace durations should mean real time. Reporting-only by
//     construction: nothing downstream of telemetry feeds results.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

namespace aegis::telemetry {

class TimeSource {
 public:
  virtual ~TimeSource() = default;
  /// Monotonic (per source) timestamp in nanoseconds.
  virtual std::uint64_t now_ns() noexcept = 0;
};

/// Deterministic default: each read advances a process-lifetime tick. The
/// quantum keeps distinct reads visibly apart in trace viewers.
class TickTimeSource final : public TimeSource {
 public:
  explicit TickTimeSource(std::uint64_t quantum_ns = 1000) noexcept
      : quantum_ns_(quantum_ns) {}
  std::uint64_t now_ns() noexcept override {
    return ticks_.fetch_add(1, std::memory_order_relaxed) * quantum_ns_;
  }

 private:
  std::atomic<std::uint64_t> ticks_{0};
  std::uint64_t quantum_ns_;
};

/// Test clock: time moves only when the test says so.
class ManualTimeSource final : public TimeSource {
 public:
  std::uint64_t now_ns() noexcept override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void set_ns(std::uint64_t t) noexcept {
    now_ns_.store(t, std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t dt) noexcept {
    now_ns_.fetch_add(dt, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_ns_{0};
};

/// Adapter over an external monotonic counter (e.g. a VirtualMachine's
/// virtual clock). The callback must be safe to call from any thread that
/// records telemetry.
class CallbackTimeSource final : public TimeSource {
 public:
  explicit CallbackTimeSource(std::function<std::uint64_t()> now_ns)
      : now_ns_(std::move(now_ns)) {}
  std::uint64_t now_ns() noexcept override {
    return now_ns_ ? now_ns_() : 0;
  }

 private:
  std::function<std::uint64_t()> now_ns_;
};

/// Wall clock for benches/daemons. Timestamps are relative to construction
/// so traces start near zero.
class WallTimeSource final : public TimeSource {
 public:
  WallTimeSource() noexcept
      // aegis-lint: clock-ok(reporting-only: telemetry trace timestamps never feed results)
      : epoch_(std::chrono::steady_clock::now()) {}
  std::uint64_t now_ns() noexcept override {
    // aegis-lint: clock-ok(reporting-only: telemetry trace timestamps never feed results)
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace aegis::telemetry
