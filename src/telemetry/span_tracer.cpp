#include "telemetry/span_tracer.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace aegis::telemetry {

namespace {

/// Innermost open ScopedSpan per thread, for parent inference.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

void SpanTracer::set_time_source(TimeSource* time_source) {
  std::lock_guard<std::mutex> lock(mu_);
  time_ = time_source;
}

std::uint64_t SpanTracer::begin(std::string_view name,
                                std::string_view category, std::uint32_t track,
                                std::uint64_t arg, std::uint64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = next_id_++;
  s.parent = parent;
  s.name.assign(name);
  s.category.assign(category);
  s.begin_ns = time_ != nullptr ? time_->now_ns() : 0;
  s.track = track;
  s.arg = arg;
  const std::uint64_t id = s.id;
  begin_event_.record(s.begin_ns, id, util::fnv1a(name), parent, track);
  open_.emplace(id, std::move(s));
  return id;
}

void SpanTracer::end(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.end_ns = time_ != nullptr ? time_->now_ns() : 0;
  if (it->second.end_ns < it->second.begin_ns) {
    it->second.end_ns = it->second.begin_ns;
  }
  end_event_.record(it->second.end_ns, id, util::fnv1a(it->second.name), 0,
                    it->second.track);
  completed_.push_back(std::move(it->second));
  open_.erase(it);
}

void SpanTracer::record_complete(std::string_view name,
                                 std::string_view category,
                                 std::uint64_t begin_ns, std::uint64_t end_ns,
                                 std::uint32_t track, std::uint64_t arg,
                                 std::uint64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = next_id_++;
  s.parent = parent;
  s.name.assign(name);
  s.category.assign(category);
  s.begin_ns = begin_ns;
  s.end_ns = end_ns < begin_ns ? begin_ns : end_ns;
  s.track = track;
  s.arg = arg;
  const std::uint64_t name_hash = util::fnv1a(name);
  begin_event_.record(s.begin_ns, s.id, name_hash, parent, track);
  end_event_.record(s.end_ns, s.id, name_hash, 0, track);
  completed_.push_back(std::move(s));
}

std::vector<Span> SpanTracer::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out = completed_;
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
    return a.id < b.id;
  });
  return out;
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  open_.clear();
  completed_.clear();
  next_id_ = 1;
}

ScopedSpan::ScopedSpan(SpanTracer& tracer, std::string_view name,
                       std::string_view category, std::uint32_t track,
                       std::uint64_t arg)
    : tracer_(&tracer) {
  const std::uint64_t parent =
      t_span_stack.empty() ? 0 : t_span_stack.back();
  id_ = tracer_->begin(name, category, track, arg, parent);
  t_span_stack.push_back(id_);
}

ScopedSpan::~ScopedSpan() {
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  tracer_->end(id_);
}

}  // namespace aegis::telemetry
