#include "telemetry/registry.hpp"

#include <cstdlib>

namespace aegis::telemetry {

namespace {

/// Resolves the span mirror handles once per registry: spans record
/// begin/end wide events through these (wait-free), never by name.
void wire_spans(FlightRecorder& recorder, SpanTracer& spans) {
  spans.set_recorder(
      recorder.event_handle("span", WideEventType::kSpanBegin),
      recorder.event_handle("span", WideEventType::kSpanEnd));
}

}  // namespace

Registry::Registry()
    : owned_time_(std::make_unique<TickTimeSource>()),
      time_(owned_time_.get()),
      spans_(time_),
      budget_(time_) {
  wire_spans(recorder_, spans_);
}

Registry::Registry(TimeSource* time_source)
    : time_(time_source), spans_(time_), budget_(time_) {
  wire_spans(recorder_, spans_);
}

void Registry::set_time_source(TimeSource* time_source) {
  time_ = time_source;
  spans_.set_time_source(time_source);
  budget_.set_time_source(time_source);
}

Registry& Registry::global() {
  static Registry instance;
  // AEGIS_FR_DUMP=<path-prefix> arms crash/terminate dumps of the global
  // recorder to "<prefix>.<pid>.frd" — how CI harvests flight-recorder
  // dumps from failed test legs with zero per-test plumbing.
  static const bool armed = [] {
    const char* prefix = std::getenv("AEGIS_FR_DUMP");
    if (prefix != nullptr && prefix[0] != '\0') {
      instance.recorder().arm_crash_dump(prefix);
    }
    return true;
  }();
  (void)armed;
  return instance;
}

}  // namespace aegis::telemetry
