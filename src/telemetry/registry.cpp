#include "telemetry/registry.hpp"

namespace aegis::telemetry {

Registry::Registry()
    : owned_time_(std::make_unique<TickTimeSource>()),
      time_(owned_time_.get()),
      spans_(time_),
      budget_(time_) {}

Registry::Registry(TimeSource* time_source)
    : time_(time_source), spans_(time_), budget_(time_) {}

void Registry::set_time_source(TimeSource* time_source) {
  time_ = time_source;
  spans_.set_time_source(time_source);
  budget_.set_time_source(time_source);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace aegis::telemetry
