// Exporters: Prometheus text exposition, JSON snapshot (aegis_top input),
// and chrome://tracing trace_event JSON.
//
// All three are deterministic given deterministic inputs: metrics iterate in
// name order, spans in (begin_ns, id) order, budget events in seq order, and
// doubles print via a fixed %.10g format — the exporter golden tests pin the
// bytes.
#pragma once

#include <ostream>

#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

namespace aegis::telemetry {

/// Prometheus text format. Counters print as integers, gauges as %.10g;
/// histograms expand to cumulative `_bucket{le="..."}` rows plus `_sum` and
/// `_count`. A `# TYPE` line is emitted once per metric base name (the part
/// before any `{label}` suffix), preceded by a `# HELP` line when the
/// registry registered one (MetricsRegistry::set_help). Per the text-format
/// spec, HELP text escapes `\` and line feeds, and label VALUES additionally
/// escape `"` — raw registration-site label values can't corrupt the
/// exposition.
void write_prometheus(const MetricsSnapshot& snap, std::ostream& os);

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {...}, "budget_timeline": [...]}. This is the wire format
/// tools/aegis_top consumes.
void write_json_snapshot(const Registry& reg, std::ostream& os);

/// chrome://tracing / Perfetto trace_event JSON: each completed span becomes
/// a `"ph":"X"` complete event (ts/dur in microseconds, pid 1, tid = track),
/// and each budget event becomes a `"ph":"C"` counter sample on an
/// "epsilon tenant N" track so ε burn-down renders as a stacked area chart.
void write_trace_json(const Registry& reg, std::ostream& os);

}  // namespace aegis::telemetry
