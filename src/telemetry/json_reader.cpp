#include "telemetry/json_reader.hpp"

#include <cctype>
#include <cstdlib>

namespace aegis::telemetry {

namespace {

const JsonValue kNullValue{};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError("json_reader: " + msg + " at offset " +
                         std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
      case 'n':
        return parse_keyword();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key.string)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case '/':
            v.string += '/';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'r':
            v.string += '\r';
            break;
          case 'b':
            v.string += '\b';
            break;
          case 'f':
            v.string += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // The exporters only escape control characters; decode the
            // Latin-1 subset and pass anything else through as '?'.
            v.string += code < 0x100 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
    ++pos_;  // closing quote
    return v;
  }

  JsonValue parse_keyword() {
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      fail("unknown keyword");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind == Kind::kObject) {
    const auto it = object.find(std::string(key));
    if (it != object.end()) return it->second;
  }
  return kNullValue;
}

std::uint64_t JsonValue::as_u64() const noexcept {
  if (kind != Kind::kNumber || number < 0.0) return 0;
  return static_cast<std::uint64_t>(number);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace aegis::telemetry
