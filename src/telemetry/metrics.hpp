// Allocation-free metrics plane.
//
// Registration (Registry::counter/gauge/histogram) is the slow path: it takes
// a mutex and may allocate, so it must happen once, at construction time,
// OUTSIDE noalloc regions (enforced by the aegis-lint `telemetry-handle`
// rule). The returned handle is a trivially-copyable pointer wrapper whose
// record operations (inc/add/set/observe) are lock-free, allocation-free and
// safe from any thread — cheap enough for `execute_once` and the PMU
// accumulate path.
//
// Counters shard across kCounterShards cache-line-padded atomics indexed by a
// per-thread ordinal (assigned from a global atomic counter, NOT std::hash,
// which aegis-lint bans) so concurrent writers do not bounce one line.
// Snapshots sum the shards; the registry's ordered map storage makes export
// order deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aegis::telemetry {

namespace detail {

inline constexpr std::size_t kCounterShards = 8;

/// Ordinal of the calling thread, used to pick a counter shard.
std::uint32_t thread_shard() noexcept;

struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> value{0};
};

struct CounterCell {
  PaddedAtomicU64 shards[kCounterShards];

  void inc(std::uint64_t n) noexcept {
    shards[thread_shard() % kCounterShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }
};

/// fetch_add on atomic<double> is C++20 but not universally lock-free;
/// a CAS loop is portable and still wait-free in the uncontended case.
inline void atomic_add_double(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

struct GaugeCell {
  std::atomic<double> value{0.0};

  void set(double v) noexcept { value.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { atomic_add_double(value, delta); }
  double get() const noexcept { return value.load(std::memory_order_relaxed); }
};

struct HistogramCell {
  /// Upper bounds (inclusive, Prometheus `le` semantics), strictly
  /// increasing. buckets.size() == bounds.size() + 1; the last bucket is the
  /// +Inf overflow.
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};

  explicit HistogramCell(std::span<const double> upper_bounds);

  void observe(double v) noexcept {
    std::size_t i = 0;
    const std::size_t n = bounds.size();
    while (i < n && v > bounds[i]) ++i;
    buckets[i].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(sum, v);
  }
};

}  // namespace detail

/// Handle to a monotonically increasing counter. Null-safe: a
/// default-constructed handle is a no-op, so instrumented code never branches
/// on "is telemetry attached".
class Counter {
 public:
  constexpr Counter() noexcept = default;
  explicit constexpr Counter(detail::CounterCell* cell) noexcept
      : cell_(cell) {}

  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr) cell_->inc(n);
  }
  std::uint64_t value() const noexcept {
    return cell_ != nullptr ? cell_->total() : 0;
  }

 private:
  detail::CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  constexpr Gauge() noexcept = default;
  explicit constexpr Gauge(detail::GaugeCell* cell) noexcept : cell_(cell) {}

  void set(double v) const noexcept {
    if (cell_ != nullptr) cell_->set(v);
  }
  void add(double delta) const noexcept {
    if (cell_ != nullptr) cell_->add(delta);
  }
  double value() const noexcept { return cell_ != nullptr ? cell_->get() : 0.0; }

 private:
  detail::GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  constexpr Histogram() noexcept = default;
  explicit constexpr Histogram(detail::HistogramCell* cell) noexcept
      : cell_(cell) {}

  void observe(double v) const noexcept {
    if (cell_ != nullptr) cell_->observe(v);
  }
  std::uint64_t count() const noexcept {
    return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed) : 0;
  }

 private:
  detail::HistogramCell* cell_ = nullptr;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  /// bounds.size() + 1 entries, cumulative per-bucket counts converted to
  /// plain (non-cumulative) counts per bucket.
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct HelpSample {
  std::string name;  // metric BASE name (no label suffix)
  std::string help;
};

/// Point-in-time copy of every metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  /// Registered HELP strings (set_help), sorted by base name. Metrics
  /// without one get no # HELP line, so exports from registries that never
  /// call set_help are byte-identical to before HELP existed.
  std::vector<HelpSample> help;
};

/// Merge two snapshots (e.g. from per-service private registries): counters
/// and matching-bounds histograms sum; gauges take `b`'s value (last writer
/// wins); histograms with mismatched bounds keep `a`'s data. Output is sorted
/// by name, so merging is deterministic and associative for counters.
MetricsSnapshot merge_snapshots(const MetricsSnapshot& a,
                                const MetricsSnapshot& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent: the same name always resolves to the same cell. For
  /// histograms the first registration's bounds win.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::span<const double> bounds);

  /// Attaches a Prometheus HELP string to a metric BASE name (the part
  /// before any {label} suffix). Idempotent; the last call wins. The
  /// exporter escapes `\` and newlines per the text-format spec.
  void set_help(std::string_view base_name, std::string_view help);

  MetricsSnapshot snapshot() const;

 private:
  // aegis-lint: lock-level(52, noblock)
  mutable std::mutex mu_;
  // Ordered map: stable iteration order → deterministic snapshots/exports,
  // and node-based storage keeps cell addresses stable across insertions.
  std::map<std::string, std::unique_ptr<detail::CounterCell>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>, std::less<>>
      histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace aegis::telemetry
