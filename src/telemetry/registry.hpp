// Telemetry hub: one MetricsRegistry + SpanTracer + BudgetTimeline sharing a
// TimeSource.
//
// Ownership model:
//   * Library hot paths (GadgetRunner, CounterRegisterFile, NoiseInjector,
//     measure_path) record into Registry::global() — a process-wide instance
//     with the deterministic TickTimeSource — so instrumentation works with
//     zero plumbing and zero behavioral effect.
//   * Service-layer objects accept an optional Registry* via their configs.
//     When null they create a PRIVATE registry, keeping per-instance stats
//     exact (tests construct several caches/services in one process).
//     Benches/daemons inject one shared Registry to get a unified trace.
#pragma once

#include <memory>

#include "telemetry/budget_timeline.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/time_source.hpp"

namespace aegis::telemetry {

class Registry {
 public:
  /// Uses an internally owned deterministic TickTimeSource.
  Registry();
  /// Uses the caller's TimeSource (not owned; must outlive the registry).
  explicit Registry(TimeSource* time_source);
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  SpanTracer& spans() noexcept { return spans_; }
  const SpanTracer& spans() const noexcept { return spans_; }
  BudgetTimeline& budget() noexcept { return budget_; }
  const BudgetTimeline& budget() const noexcept { return budget_; }
  FlightRecorder& recorder() noexcept { return recorder_; }
  const FlightRecorder& recorder() const noexcept { return recorder_; }
  TimeSource& time_source() noexcept { return *time_; }

  /// Rewires tracer + timeline to a new source (not owned).
  void set_time_source(TimeSource* time_source);

  /// Process-wide registry used by components with no injection point.
  static Registry& global();

 private:
  std::unique_ptr<TimeSource> owned_time_;
  TimeSource* time_;
  MetricsRegistry metrics_;
  // Declared before the tracer: spans mirror begin/end wide events into the
  // recorder through handles resolved at construction.
  FlightRecorder recorder_;
  SpanTracer spans_;
  BudgetTimeline budget_;
};

/// `reg ? *reg : Registry::global()` — the idiom for optional config plumbing.
inline Registry& resolve(Registry* reg) {
  return reg != nullptr ? *reg : Registry::global();
}

}  // namespace aegis::telemetry
