#include "telemetry/exporters.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <string_view>

namespace aegis::telemetry {

namespace {

/// Fixed-format double: enough digits to round-trip the values we emit while
/// staying locale-independent and byte-stable across platforms.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return std::string(buf);
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return std::string(buf);
}

/// Metric base name: the part before any {label} suffix.
std::string_view base_name(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// Prometheus text-format escaping. HELP text escapes backslash and line
/// feed; label values additionally escape the double quote (the spec's
/// three escapes — anything else passes through as UTF-8).
std::string prom_escape(std::string_view s, bool quote_too) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"' && quote_too) {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view s) {
  return prom_escape(s, /*quote_too=*/false);
}

/// Re-escapes the label VALUES of an already-composed `base{k="v",...}`
/// metric name. Values were inserted raw by registration sites, so a value
/// containing `"` / `\` / newline would otherwise corrupt the exposition.
/// A value is taken to end at a quote followed by `,` or the closing `}` —
/// the only ambiguity raw composition leaves.
std::string escape_labels(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return std::string(name);
  }
  std::string out(name.substr(0, brace + 1));
  const std::string_view body = name.substr(brace + 1, name.size() - brace - 2);
  std::size_t i = 0;
  while (i < body.size()) {
    const auto eq = body.find("=\"", i);
    if (eq == std::string_view::npos) {
      out.append(body.substr(i));
      break;
    }
    out.append(body.substr(i, eq - i + 2));  // key and ="
    i = eq + 2;
    std::size_t j = i;
    while (j < body.size() &&
           !(body[j] == '"' && (j + 1 == body.size() || body[j + 1] == ','))) {
      ++j;
    }
    out += prom_escape(body.substr(i, j - i), /*quote_too=*/true);
    out += '"';
    i = j < body.size() ? j + 1 : j;
  }
  out += '}';
  return out;
}

void help_line_once(std::string_view base, const MetricsSnapshot& snap,
                    std::set<std::string>& seen, std::ostream& os) {
  if (!seen.insert(std::string(base)).second) return;
  for (const auto& h : snap.help) {
    if (h.name == base) {
      os << "# HELP " << base << ' ' << escape_help(h.help) << '\n';
      return;
    }
  }
}

void type_line_once(std::string_view name, std::string_view type,
                    const MetricsSnapshot& snap, std::set<std::string>& seen,
                    std::set<std::string>& helped, std::ostream& os) {
  const std::string base(base_name(name));
  help_line_once(base, snap, helped, os);
  if (seen.insert(base).second) {
    os << "# TYPE " << base << ' ' << type << '\n';
  }
}

/// JSON string escape for the restricted names/outcomes we emit.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_prometheus(const MetricsSnapshot& snap, std::ostream& os) {
  std::set<std::string> typed;
  std::set<std::string> helped;
  for (const auto& c : snap.counters) {
    type_line_once(c.name, "counter", snap, typed, helped, os);
    os << escape_labels(c.name) << ' ' << fmt_u64(c.value) << '\n';
  }
  for (const auto& g : snap.gauges) {
    type_line_once(g.name, "gauge", snap, typed, helped, os);
    os << escape_labels(g.name) << ' ' << fmt_double(g.value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    type_line_once(h.name, "histogram", snap, typed, helped, os);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << base_name(h.name) << "_bucket{le=\"" << fmt_double(h.bounds[i])
         << "\"} " << fmt_u64(cumulative) << '\n';
    }
    os << base_name(h.name) << "_bucket{le=\"+Inf\"} " << fmt_u64(h.count)
       << '\n';
    os << base_name(h.name) << "_sum " << fmt_double(h.sum) << '\n';
    os << base_name(h.name) << "_count " << fmt_u64(h.count) << '\n';
  }
}

void write_json_snapshot(const Registry& reg, std::ostream& os) {
  const MetricsSnapshot snap = reg.metrics().snapshot();
  const std::vector<BudgetEvent> events = reg.budget().events();

  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(snap.counters[i].name)
       << "\": " << fmt_u64(snap.counters[i].value);
  }
  os << (snap.counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(snap.gauges[i].name)
       << "\": " << fmt_double(snap.gauges[i].value);
  }
  os << (snap.gauges.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
       << "\": {\"bounds\": [";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      os << (j == 0 ? "" : ", ") << fmt_double(h.bounds[j]);
    }
    os << "], \"buckets\": [";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      os << (j == 0 ? "" : ", ") << fmt_u64(h.buckets[j]);
    }
    os << "], \"count\": " << fmt_u64(h.count)
       << ", \"sum\": " << fmt_double(h.sum) << '}';
  }
  os << (snap.histograms.empty() ? "},\n" : "\n  },\n");

  os << "  \"budget_timeline\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"seq\": " << fmt_u64(e.seq)
       << ", \"t_ns\": " << fmt_u64(e.t_ns)
       << ", \"tenant\": " << fmt_u64(e.tenant_id) << ", \"outcome\": \""
       << json_escape(e.outcome) << "\", \"granularity\": " << e.granularity
       << ", \"releases\": " << fmt_u64(e.releases)
       << ", \"epsilon_after\": " << fmt_double(e.epsilon_after)
       << ", \"epsilon_cap\": " << fmt_double(e.epsilon_cap) << '}';
  }
  os << (events.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

void write_trace_json(const Registry& reg, std::ostream& os) {
  const std::vector<Span> spans = reg.spans().completed();
  const std::vector<BudgetEvent> events = reg.budget().events();

  os << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& s : spans) {
    os << (first ? "\n" : ",\n");
    first = false;
    // trace_event ts/dur are microseconds (doubles, so sub-µs survives).
    os << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
       << json_escape(s.category) << "\", \"ph\": \"X\", \"ts\": "
       << fmt_double(static_cast<double>(s.begin_ns) / 1000.0)
       << ", \"dur\": "
       << fmt_double(static_cast<double>(s.end_ns - s.begin_ns) / 1000.0)
       << ", \"pid\": 1, \"tid\": " << s.track << ", \"args\": {\"id\": "
       << fmt_u64(s.id) << ", \"parent\": " << fmt_u64(s.parent)
       << ", \"arg\": " << fmt_u64(s.arg) << "}}";
  }
  for (const auto& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"epsilon tenant " << fmt_u64(e.tenant_id)
       << "\", \"cat\": \"budget\", \"ph\": \"C\", \"ts\": "
       << fmt_double(static_cast<double>(e.t_ns) / 1000.0)
       << ", \"pid\": 1, \"tid\": 0, \"args\": {\"epsilon\": "
       << fmt_double(e.epsilon_after) << ", \"remaining\": "
       << fmt_double(e.epsilon_cap - e.epsilon_after) << "}}";
  }
  os << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace aegis::telemetry
