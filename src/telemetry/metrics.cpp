#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace aegis::telemetry {

namespace detail {

std::uint32_t thread_shard() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

HistogramCell::HistogramCell(std::span<const double> upper_bounds)
    : bounds(upper_bounds.begin(), upper_bounds.end()) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument(
          "telemetry: histogram bounds must be strictly increasing");
    }
  }
  buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds.size() + 1);
  for (std::size_t i = 0; i <= bounds.size(); ++i) {
    buckets[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<detail::CounterCell>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<detail::GaugeCell>())
             .first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCell>(bounds))
             .first;
  }
  return Histogram(it->second.get());
}

void MetricsRegistry::set_help(std::string_view base_name,
                               std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[std::string(base_name)] = std::string(help);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.counters.push_back({name, cell->total()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    out.gauges.push_back({name, cell->get()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = cell->bounds;
    s.buckets.resize(cell->bounds.size() + 1);
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      s.buckets[i] = cell->buckets[i].load(std::memory_order_relaxed);
    }
    s.count = cell->count.load(std::memory_order_relaxed);
    s.sum = cell->sum.load(std::memory_order_relaxed);
    out.histograms.push_back(std::move(s));
  }
  out.help.reserve(help_.size());
  for (const auto& [name, text] : help_) {
    out.help.push_back({name, text});
  }
  return out;
}

MetricsSnapshot merge_snapshots(const MetricsSnapshot& a,
                                const MetricsSnapshot& b) {
  MetricsSnapshot out = a;

  for (const auto& cb : b.counters) {
    auto it = std::find_if(out.counters.begin(), out.counters.end(),
                           [&](const CounterSample& s) { return s.name == cb.name; });
    if (it != out.counters.end()) {
      it->value += cb.value;
    } else {
      out.counters.push_back(cb);
    }
  }
  for (const auto& gb : b.gauges) {
    auto it = std::find_if(out.gauges.begin(), out.gauges.end(),
                           [&](const GaugeSample& s) { return s.name == gb.name; });
    if (it != out.gauges.end()) {
      it->value = gb.value;  // last writer wins
    } else {
      out.gauges.push_back(gb);
    }
  }
  for (const auto& hb : b.histograms) {
    auto it = std::find_if(
        out.histograms.begin(), out.histograms.end(),
        [&](const HistogramSample& s) { return s.name == hb.name; });
    if (it == out.histograms.end()) {
      out.histograms.push_back(hb);
    } else if (it->bounds == hb.bounds) {
      for (std::size_t i = 0; i < it->buckets.size(); ++i) {
        it->buckets[i] += hb.buckets[i];
      }
      it->count += hb.count;
      it->sum += hb.sum;
    }
    // Mismatched bounds: keep a's data (documented behavior).
  }

  for (const auto& hb : b.help) {
    auto it = std::find_if(out.help.begin(), out.help.end(),
                           [&](const HelpSample& s) { return s.name == hb.name; });
    if (it != out.help.end()) {
      it->help = hb.help;  // last writer wins, like gauges
    } else {
      out.help.push_back(hb);
    }
  }

  auto by_name = [](const auto& x, const auto& y) { return x.name < y.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  std::sort(out.help.begin(), out.help.end(), by_name);
  return out;
}

}  // namespace aegis::telemetry
