#include "telemetry/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "telemetry/registry.hpp"

namespace aegis::telemetry {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string tenant_metric(const char* base, std::uint64_t tenant_id) {
  return std::string(base) + "{tenant=\"" + std::to_string(tenant_id) + "\"}";
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

BudgetForecaster::BudgetForecaster(ForecasterConfig config, Registry* telemetry)
    : config_(config), telemetry_(&resolve(telemetry)) {
  if (config_.window < 2) config_.window = 2;
  if (config_.min_points < 2) config_.min_points = 2;
  alert_event_ = telemetry_->recorder().event_handle("anomaly.budget",
                                                     WideEventType::kAlert);
  alerts_ = telemetry_->metrics().counter(
      "aegis_budget_exhaustion_alerts_total");
  telemetry_->metrics().set_help(
      "aegis_tenant_eta_ns",
      "Forecast ns until the tenant's advanced-composition epsilon crosses "
      "its cap (least-squares slope over the admission window)");
  telemetry_->metrics().set_help("aegis_tenant_eps_burn_per_s",
                                 "Forecast epsilon burn rate per second");
  telemetry_->metrics().set_help(
      "aegis_budget_exhaustion_alerts_total",
      "kBudgetExhaustionSoon alerts (forecast ETA fell inside the horizon)");
}

BudgetForecast BudgetForecaster::fit(const TenantSeries& series) const {
  BudgetForecast fc;
  fc.eta_ns = kInf;
  const std::size_t n = series.points.size();
  if (n < config_.min_points) return fc;
  // Least squares on (t - t0, epsilon_after); t is re-based so the double
  // sums keep precision for large tick counts.
  const double t0 = static_cast<double>(series.points.front().t_ns);
  double sum_t = 0.0, sum_e = 0.0, sum_tt = 0.0, sum_te = 0.0;
  for (const BudgetEvent& p : series.points) {
    const double t = static_cast<double>(p.t_ns) - t0;
    const double e = p.epsilon_after;
    sum_t += t;
    sum_e += e;
    sum_tt += t * t;
    sum_te += t * e;
  }
  const double nd = static_cast<double>(n);
  const double var = sum_tt - sum_t * sum_t / nd;
  if (var <= 0.0) return fc;  // all observations at one timestamp
  fc.valid = true;
  fc.slope_eps_per_ns = (sum_te - sum_t * sum_e / nd) / var;
  fc.epsilon = series.points.back().epsilon_after;
  fc.cap = series.points.back().epsilon_cap;
  if (fc.slope_eps_per_ns > 0.0 && fc.cap > fc.epsilon) {
    fc.eta_ns = (fc.cap - fc.epsilon) / fc.slope_eps_per_ns;
  } else if (fc.slope_eps_per_ns > 0.0) {
    fc.eta_ns = 0.0;  // already at/over the cap
  }
  return fc;
}

void BudgetForecaster::ingest(const BudgetEvent& event) {
  BudgetForecast fc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tenants_.try_emplace(event.tenant_id);
    TenantSeries& series = it->second;
    if (inserted) {
      // Registration takes the metrics lock (level 52) above ours (17):
      // ascending, lock-order clean even when driven under the governor's
      // level-15 lock.
      series.eta_gauge = telemetry_->metrics().gauge(
          tenant_metric("aegis_tenant_eta_ns", event.tenant_id));
      series.burn_gauge = telemetry_->metrics().gauge(
          tenant_metric("aegis_tenant_eps_burn_per_s", event.tenant_id));
      series.eta_gauge.set(kInf);
    }
    if (event.outcome == "reset") {
      // A fresh budget grant restarts the burn-down; yesterday's slope
      // would poison the new forecast.
      series.points.clear();
      series.eta_gauge.set(kInf);
      series.burn_gauge.set(0.0);
      return;
    }
    series.points.push_back(event);
    while (series.points.size() > config_.window) series.points.pop_front();
    fc = fit(series);
    if (fc.valid) {
      series.eta_gauge.set(fc.eta_ns);
      series.burn_gauge.set(fc.slope_eps_per_ns * 1e9);
    }
  }
  if (config_.alert_horizon_ns > 0 && fc.valid &&
      fc.eta_ns < static_cast<double>(config_.alert_horizon_ns)) {
    alerts_.inc();
    alert_event_.record(
        event.t_ns, static_cast<std::uint64_t>(AlertKind::kBudgetExhaustionSoon),
        double_bits(fc.eta_ns), event.seq, double_bits(fc.epsilon),
        static_cast<std::uint32_t>(event.tenant_id));
  }
}

void BudgetForecaster::ingest(const std::vector<BudgetEvent>& events) {
  for (const BudgetEvent& e : events) ingest(e);
}

BudgetForecast BudgetForecaster::forecast(std::uint64_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant_id);
  BudgetForecast fc;
  fc.eta_ns = kInf;
  if (it == tenants_.end()) return fc;
  return fit(it->second);
}

AttackProbabilityMonitor::AttackProbabilityMonitor(AttackMonitorConfig config,
                                                   Registry* telemetry)
    : config_(std::move(config)),
      telemetry_(&resolve(telemetry)),
      attack_events_(config_.attack_events) {
  alert_event_ = telemetry_->recorder().event_handle("anomaly.attack",
                                                     WideEventType::kAlert);
  alerts_ = telemetry_->metrics().counter("aegis_attack_alerts_total");
  sessions_scored_ =
      telemetry_->metrics().counter("aegis_attack_sessions_scored_total");
  telemetry_->metrics().set_help(
      "aegis_attack_probability",
      "Logistic attack-likelihood score of the tenant's latest session "
      "(event-set overlap + read cadence + stepping burstiness)");
  telemetry_->metrics().set_help(
      "aegis_attack_alerts_total",
      "Sessions whose attack probability crossed the alert threshold");
}

void AttackProbabilityMonitor::set_attack_events(
    std::vector<std::uint32_t> attack_events) {
  std::lock_guard<std::mutex> lock(mu_);
  attack_events_ = std::move(attack_events);
}

std::vector<std::uint32_t> AttackProbabilityMonitor::attack_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attack_events_;
}

AttackScore AttackProbabilityMonitor::score(
    const SessionFeatures& features) const {
  AttackScore s;
  // Overlap of the session's monitored set with the vendor attack set —
  // the one feature a real attacker cannot avoid (it must watch the
  // leaking events to learn anything).
  std::size_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint32_t ev : features.monitored_events) {
      if (std::find(attack_events_.begin(), attack_events_.end(), ev) !=
          attack_events_.end()) {
        ++hits;
      }
    }
  }
  const std::size_t denom = std::max<std::size_t>(
      features.monitored_events.size(), 1);
  s.overlap = static_cast<double>(hits) / static_cast<double>(denom);
  // Periodic sampling (cv -> 0) is attacker-like; bursty ad-hoc reads are
  // benign. Map cv in [0, inf) to cadence in (0, 1].
  const double cv = std::max(features.read_gap_cv, 0.0);
  s.cadence = 1.0 / (1.0 + cv);
  s.burst = std::clamp(features.stepped_fraction, 0.0, 1.0);
  // Logistic over hand-set weights. The calibration test pins this against
  // the committed seceval frontier profiles, so a weight change that
  // un-separates attackers from benign readers fails CI.
  const double z = 3.5 * s.overlap + 1.5 * s.cadence + 1.0 * s.burst - 2.8;
  s.probability = 1.0 / (1.0 + std::exp(-z));
  s.alert = s.probability >= config_.threshold;
  return s;
}

AttackScore AttackProbabilityMonitor::ingest(const SessionFeatures& features) {
  const AttackScore s = score(features);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tenant_gauges_.try_emplace(features.tenant_id);
    if (inserted) {
      it->second = telemetry_->metrics().gauge(
          tenant_metric("aegis_attack_probability", features.tenant_id));
    }
    it->second.set(s.probability);
  }
  sessions_scored_.inc();
  if (s.alert) {
    alerts_.inc();
    alert_event_.record(features.slices,
                        static_cast<std::uint64_t>(AlertKind::kAttackSuspected),
                        double_bits(s.probability), double_bits(s.overlap),
                        double_bits(s.cadence),
                        static_cast<std::uint32_t>(features.tenant_id));
    if (config_.dump_on_alert) {
      telemetry_->recorder().trigger_armed_dump();
    }
  }
  return s;
}

}  // namespace aegis::telemetry
