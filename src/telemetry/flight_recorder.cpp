#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <istream>
#include <ostream>

namespace aegis::telemetry {

namespace {

// Dump format v1. Header (40 bytes, little-endian):
//   magic[8]="AEGISFR1", u32 version, u32 record_size, u64 count,
//   u64 dropped, u32 name_table_len, u32 name_table_count
// then name_table_len bytes of (u16 length + bytes) stream names, then
// `count` 56-byte records (count == ~0 means "until EOF" — the crash path
// cannot know the count up front without a second pass it may not survive).
constexpr char kMagic[8] = {'A', 'E', 'G', 'I', 'S', 'F', 'R', '1'};
constexpr std::uint32_t kDumpVersion = 1;
constexpr std::uint32_t kRecordSize = 56;
constexpr std::uint64_t kCountUntilEof = ~0ULL;

/// Process-wide thread ordinal for ring selection. Deliberately separate
/// from metrics detail::thread_shard() so this TU stays standalone (the
/// aegis_top dump viewer links it without the rest of the library).
std::uint32_t fr_thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void put_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void encode_record(const DrainedEvent& ev, unsigned char* p) noexcept {
  put_u64(p + 0, ev.t_ns);
  put_u64(p + 8, ev.a);
  put_u64(p + 16, ev.b);
  put_u64(p + 24, ev.c);
  put_u64(p + 32, ev.d);
  const std::uint64_t meta = (static_cast<std::uint64_t>(ev.type) << 48) |
                             (static_cast<std::uint64_t>(ev.stream) << 32) |
                             ev.tenant;
  put_u64(p + 40, meta);
  put_u32(p + 48, ev.ring);
  put_u32(p + 52, static_cast<std::uint32_t>(ev.seq));
}

DrainedEvent decode_record(const unsigned char* p) noexcept {
  DrainedEvent ev;
  ev.t_ns = get_u64(p + 0);
  ev.a = get_u64(p + 8);
  ev.b = get_u64(p + 16);
  ev.c = get_u64(p + 24);
  ev.d = get_u64(p + 32);
  const std::uint64_t meta = get_u64(p + 40);
  ev.type = static_cast<std::uint16_t>(meta >> 48);
  ev.stream = static_cast<std::uint16_t>((meta >> 32) & 0xFFFF);
  ev.tenant = static_cast<std::uint32_t>(meta);
  ev.ring = get_u32(p + 48);
  ev.seq = get_u32(p + 52);
  return ev;
}

/// write(2) loop tolerating short writes; async-signal-safe.
bool write_all(int fd, const unsigned char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return false;
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return std::string(buf);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Crash-dump arming state. Path and recorder are published atomically and
// the path is fully composed at arm time, so the signal path only reads.
std::atomic<FlightRecorder*> g_armed{nullptr};
char g_armed_path[512] = {0};
std::atomic<bool> g_terminate_hook_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

void crash_dump_now() noexcept {
  FlightRecorder* rec = g_armed.load(std::memory_order_acquire);
  if (rec != nullptr && g_armed_path[0] != '\0') {
    rec->dump_to_file(g_armed_path);
  }
}

extern "C" void aegis_fr_signal_handler(int sig) {
  crash_dump_now();
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies with the original signal (and core-dumps where configured).
  ::raise(sig);
}

[[noreturn]] void fr_terminate_handler() {
  crash_dump_now();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

const char* to_string(WideEventType t) noexcept {
  switch (t) {
    case WideEventType::kNone: return "none";
    case WideEventType::kSpanBegin: return "span-begin";
    case WideEventType::kSpanEnd: return "span-end";
    case WideEventType::kMetricDelta: return "metric-delta";
    case WideEventType::kAdmission: return "admission";
    case WideEventType::kPlanRotation: return "plan-rotation";
    case WideEventType::kRngCheckpoint: return "rng-checkpoint";
    case WideEventType::kAlert: return "alert";
    case WideEventType::kHotExec: return "hot-exec";
  }
  return "?";
}

void EventHandle::record(std::uint64_t t_ns, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c, std::uint64_t d,
                         std::uint32_t tenant) const noexcept {
  if (recorder_ != nullptr) {
    recorder_->record_raw(type_, stream_, t_ns, a, b, c, d, tenant);
  }
}

FlightRecorder::FlightRecorder(RecorderConfig config) {
  enabled_.store(config.enabled, std::memory_order_relaxed);
  capacity_ = round_up_pow2(std::max<std::size_t>(config.ring_capacity, 2));
  mask_ = capacity_ - 1;
  ring_count_ = std::max<std::size_t>(config.rings, 1);
  rings_ = std::make_unique<Ring[]>(ring_count_);
  for (std::size_t r = 0; r < ring_count_; ++r) {
    rings_[r].slots = std::make_unique<Slot[]>(capacity_);
  }
  name_table_ = std::make_unique<unsigned char[]>(kNameTableBytes);
}

FlightRecorder::~FlightRecorder() {
  // Disarm if this recorder owns the crash hooks: a dump from a destroyed
  // recorder would read freed rings.
  FlightRecorder* self = this;
  g_armed.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

EventHandle FlightRecorder::event_handle(std::string_view name,
                                         WideEventType type) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint16_t id = 0;
  bool found = false;
  for (std::size_t i = 0; i < stream_names_.size(); ++i) {
    if (stream_names_[i] == name) {
      id = static_cast<std::uint16_t>(i);
      found = true;
      break;
    }
  }
  if (!found) {
    if (stream_names_.size() >= 0xFFFF) {
      // Stream-id space exhausted: alias onto stream 0 rather than fail.
      return EventHandle(this, type, 0);
    }
    id = static_cast<std::uint16_t>(stream_names_.size());
    stream_names_.emplace_back(name);
    // Append to the pre-rendered (signal-safe) name table if it still fits.
    // Names are id-ordered in the table, so a prefix is always consistent.
    const std::size_t len = std::min<std::size_t>(name.size(), 0xFFFF);
    const std::uint32_t off = name_table_len_.load(std::memory_order_relaxed);
    if (off + 2 + len <= kNameTableBytes) {
      put_u16(name_table_.get() + off, static_cast<std::uint16_t>(len));
      std::memcpy(name_table_.get() + off + 2, name.data(), len);
      name_table_len_.store(off + 2 + static_cast<std::uint32_t>(len),
                            std::memory_order_release);
      name_table_count_.fetch_add(1, std::memory_order_release);
    }
  }
  return EventHandle(this, type, id);
}

void FlightRecorder::record_named(std::string_view name, WideEventType type,
                                  std::uint64_t t_ns, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t c,
                                  std::uint64_t d, std::uint32_t tenant) {
  event_handle(name, type).record(t_ns, a, b, c, d, tenant);
}

void FlightRecorder::record_raw(std::uint16_t type, std::uint16_t stream,
                                std::uint64_t t_ns, std::uint64_t a,
                                std::uint64_t b, std::uint64_t c,
                                std::uint64_t d,
                                std::uint32_t tenant) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring& ring = rings_[fr_thread_ordinal() % ring_count_];
  const std::uint64_t idx = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[idx & mask_];
  // Invalidate, write payload, publish: readers only accept a slot whose
  // sequence reads idx+1 both before and after the payload copy, so a
  // concurrent overwrite is detected rather than delivered torn.
  slot.seq.store(0, std::memory_order_release);
  slot.words[0].store(t_ns, std::memory_order_relaxed);
  slot.words[1].store(a, std::memory_order_relaxed);
  slot.words[2].store(b, std::memory_order_relaxed);
  slot.words[3].store(c, std::memory_order_relaxed);
  slot.words[4].store(d, std::memory_order_relaxed);
  const std::uint64_t meta = (static_cast<std::uint64_t>(type) << 48) |
                             (static_cast<std::uint64_t>(stream) << 32) |
                             tenant;
  slot.words[5].store(meta, std::memory_order_relaxed);
  slot.seq.store(idx + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::snapshot_ring(std::uint32_t ring_index,
                                            std::vector<DrainedEvent>& out) const {
  const Ring& ring = rings_[ring_index];
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  std::uint64_t torn = 0;
  for (std::uint64_t idx = begin; idx < head; ++idx) {
    const Slot& slot = ring.slots[idx & mask_];
    const std::uint64_t want = idx + 1;
    if (slot.seq.load(std::memory_order_acquire) != want) {
      ++torn;  // in-flight or already overwritten by a newer claim
      continue;
    }
    DrainedEvent ev;
    ev.t_ns = slot.words[0].load(std::memory_order_relaxed);
    ev.a = slot.words[1].load(std::memory_order_relaxed);
    ev.b = slot.words[2].load(std::memory_order_relaxed);
    ev.c = slot.words[3].load(std::memory_order_relaxed);
    ev.d = slot.words[4].load(std::memory_order_relaxed);
    const std::uint64_t meta = slot.words[5].load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != want) {
      ++torn;  // overwritten mid-copy
      continue;
    }
    ev.type = static_cast<std::uint16_t>(meta >> 48);
    ev.stream = static_cast<std::uint16_t>((meta >> 32) & 0xFFFF);
    ev.tenant = static_cast<std::uint32_t>(meta);
    ev.ring = ring_index;
    ev.seq = idx;
    out.push_back(ev);
  }
  return torn;
}

std::vector<DrainedEvent> FlightRecorder::drain() const {
  std::vector<DrainedEvent> out;
  out.reserve(256);
  std::uint64_t torn = 0;
  for (std::size_t r = 0; r < ring_count_; ++r) {
    torn += snapshot_ring(static_cast<std::uint32_t>(r), out);
  }
  torn_.store(torn, std::memory_order_relaxed);
  std::sort(out.begin(), out.end(),
            [](const DrainedEvent& x, const DrainedEvent& y) {
              if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
              if (x.ring != y.ring) return x.ring < y.ring;
              return x.seq < y.seq;
            });
  return out;
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  std::uint64_t overwritten = 0;
  for (std::size_t r = 0; r < ring_count_; ++r) {
    const std::uint64_t head = rings_[r].head.load(std::memory_order_relaxed);
    if (head > capacity_) overwritten += head - capacity_;
  }
  return overwritten + torn_.load(std::memory_order_relaxed);
}

std::vector<std::string> FlightRecorder::streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_names_;
}

void FlightRecorder::clear() {
  for (std::size_t r = 0; r < ring_count_; ++r) {
    rings_[r].head.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < capacity_; ++i) {
      rings_[r].slots[i].seq.store(0, std::memory_order_relaxed);
    }
  }
  torn_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::write_dump(std::ostream& os) const {
  const std::vector<DrainedEvent> events = drain();
  unsigned char header[40];
  std::memcpy(header, kMagic, 8);
  put_u32(header + 8, kDumpVersion);
  put_u32(header + 12, kRecordSize);
  put_u64(header + 16, events.size());
  put_u64(header + 24, dropped());
  const std::uint32_t table_len =
      name_table_len_.load(std::memory_order_acquire);
  const std::uint32_t table_count =
      name_table_count_.load(std::memory_order_acquire);
  put_u32(header + 32, table_len);
  put_u32(header + 36, table_count);
  os.write(reinterpret_cast<const char*>(header), sizeof(header));
  os.write(reinterpret_cast<const char*>(name_table_.get()), table_len);
  unsigned char rec[kRecordSize];
  for (const DrainedEvent& ev : events) {
    encode_record(ev, rec);
    os.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  }
}

bool FlightRecorder::dump_to_fd(int fd) const noexcept {
  unsigned char header[40];
  std::memcpy(header, kMagic, 8);
  put_u32(header + 8, kDumpVersion);
  put_u32(header + 12, kRecordSize);
  put_u64(header + 16, kCountUntilEof);
  put_u64(header + 24, dropped());
  const std::uint32_t table_len =
      name_table_len_.load(std::memory_order_acquire);
  const std::uint32_t table_count =
      name_table_count_.load(std::memory_order_acquire);
  put_u32(header + 32, table_len);
  put_u32(header + 36, table_count);
  if (!write_all(fd, header, sizeof(header))) return false;
  if (!write_all(fd, name_table_.get(), table_len)) return false;
  // Per-ring claim order, validated the same way as drain() but with no
  // sort and no heap: the reader orders by the (ring, seq) fields.
  unsigned char rec[kRecordSize];
  for (std::size_t r = 0; r < ring_count_; ++r) {
    const Ring& ring = rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
    for (std::uint64_t idx = begin; idx < head; ++idx) {
      const Slot& slot = ring.slots[idx & mask_];
      const std::uint64_t want = idx + 1;
      if (slot.seq.load(std::memory_order_acquire) != want) continue;
      DrainedEvent ev;
      ev.t_ns = slot.words[0].load(std::memory_order_relaxed);
      ev.a = slot.words[1].load(std::memory_order_relaxed);
      ev.b = slot.words[2].load(std::memory_order_relaxed);
      ev.c = slot.words[3].load(std::memory_order_relaxed);
      ev.d = slot.words[4].load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.words[5].load(std::memory_order_relaxed);
      if (slot.seq.load(std::memory_order_acquire) != want) continue;
      ev.type = static_cast<std::uint16_t>(meta >> 48);
      ev.stream = static_cast<std::uint16_t>((meta >> 32) & 0xFFFF);
      ev.tenant = static_cast<std::uint32_t>(meta);
      ev.ring = static_cast<std::uint32_t>(r);
      ev.seq = idx;
      encode_record(ev, rec);
      if (!write_all(fd, rec, sizeof(rec))) return false;
    }
  }
  return true;
}

bool FlightRecorder::dump_to_file(const char* path) const noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump_to_fd(fd);
  ::close(fd);
  return ok;
}

void FlightRecorder::arm_crash_dump(const char* path_prefix) {
  std::snprintf(g_armed_path, sizeof(g_armed_path), "%s.%d.frd", path_prefix,
                static_cast<int>(::getpid()));
  g_armed.store(this, std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = aegis_fr_signal_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
  bool installed = false;
  if (g_terminate_hook_installed.compare_exchange_strong(installed, true)) {
    g_prev_terminate = std::set_terminate(fr_terminate_handler);
  }
}

FlightRecorder* FlightRecorder::armed() noexcept {
  return g_armed.load(std::memory_order_acquire);
}

bool FlightRecorder::trigger_armed_dump() const noexcept {
  if (g_armed.load(std::memory_order_acquire) != this ||
      g_armed_path[0] == '\0') {
    return false;
  }
  return dump_to_file(g_armed_path);
}

std::optional<DumpDocument> read_dump(std::istream& is) {
  unsigned char header[40];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  if (is.gcount() != sizeof(header)) return std::nullopt;
  if (std::memcmp(header, kMagic, 8) != 0) return std::nullopt;
  DumpDocument doc;
  doc.version = get_u32(header + 8);
  const std::uint32_t record_size = get_u32(header + 12);
  if (doc.version != kDumpVersion || record_size != kRecordSize) {
    return std::nullopt;
  }
  const std::uint64_t count = get_u64(header + 16);
  doc.dropped = get_u64(header + 24);
  const std::uint32_t table_len = get_u32(header + 32);
  const std::uint32_t table_count = get_u32(header + 36);
  std::vector<unsigned char> table(table_len);
  if (table_len > 0) {
    is.read(reinterpret_cast<char*>(table.data()), table_len);
    if (static_cast<std::uint32_t>(is.gcount()) != table_len) {
      return std::nullopt;
    }
  }
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < table_count && off + 2 <= table_len; ++i) {
    const std::uint16_t len = get_u16(table.data() + off);
    off += 2;
    if (off + len > table_len) break;
    doc.streams.emplace_back(reinterpret_cast<const char*>(table.data()) + off,
                             len);
    off += len;
  }
  // Tolerate a truncated record stream: a crash may have cut the tail, and
  // the events that did land are exactly what a flight recorder is for.
  unsigned char rec[kRecordSize];
  for (std::uint64_t i = 0; count == kCountUntilEof || i < count; ++i) {
    is.read(reinterpret_cast<char*>(rec), sizeof(rec));
    if (is.gcount() != sizeof(rec)) break;
    doc.events.push_back(decode_record(rec));
  }
  return doc;
}

std::optional<DumpDocument> read_dump_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return std::nullopt;
  std::string bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  // std::istringstream lives in <sstream>; keep the heavy include local.
  struct MemBuf : std::streambuf {
    explicit MemBuf(std::string& s) {
      setg(s.data(), s.data(), s.data() + s.size());
    }
  };
  MemBuf mem(bytes);
  std::istream is(&mem);
  return read_dump(is);
}

void write_recorder_trace_json(const DumpDocument& doc, std::ostream& os) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const DrainedEvent& ev : doc.events) {
    std::string name;
    if (ev.stream < doc.streams.size()) {
      name = json_escape(doc.streams[ev.stream]);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "stream#%u",
                    static_cast<unsigned>(ev.stream));
      name = buf;
    }
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << name << "\", \"cat\": \""
       << to_string(static_cast<WideEventType>(ev.type))
       << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
       << fmt_double(static_cast<double>(ev.t_ns) / 1000.0)
       << ", \"pid\": 1, \"tid\": " << ev.ring << ", \"args\": {\"a\": " << ev.a
       << ", \"b\": " << ev.b << ", \"c\": " << ev.c << ", \"d\": " << ev.d
       << ", \"tenant\": " << ev.tenant << ", \"seq\": " << ev.seq << "}}";
  }
  os << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace aegis::telemetry
