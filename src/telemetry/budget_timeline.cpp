#include "telemetry/budget_timeline.hpp"

namespace aegis::telemetry {

void BudgetTimeline::set_time_source(TimeSource* time_source) {
  std::lock_guard<std::mutex> lock(mu_);
  time_ = time_source;
}

BudgetEvent BudgetTimeline::stamp(std::uint64_t tenant_id,
                                  std::string_view outcome,
                                  std::uint32_t granularity,
                                  std::uint64_t releases, double epsilon_after,
                                  double epsilon_cap) {
  std::lock_guard<std::mutex> lock(mu_);
  BudgetEvent e;
  e.seq = next_seq_++;
  e.t_ns = time_ != nullptr ? time_->now_ns() : 0;
  e.tenant_id = tenant_id;
  e.outcome.assign(outcome);
  e.granularity = granularity;
  e.releases = releases;
  e.epsilon_after = epsilon_after;
  e.epsilon_cap = epsilon_cap;
  events_.push_back(e);
  return e;
}

std::vector<BudgetEvent> BudgetTimeline::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void BudgetTimeline::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

}  // namespace aegis::telemetry
