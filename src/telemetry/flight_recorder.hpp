// Always-on flight recorder: per-thread ring buffers of fixed-size binary
// wide events, modeled on the Linux perf ring buffer the paper's real
// sampler would sit on.
//
// Design goals, in order:
//   1. The record path is wait-free and allocation-free, so it is legal
//      inside the existing `noalloc` regions (GadgetRunner::execute_once,
//      NoiseInjector::inject). Like MetricsRegistry, the slow path is the
//      by-name registration (`event_handle`) which takes a mutex and may
//      allocate; the returned EventHandle is a trivially-copyable pointer
//      wrapper whose record() is a claim-index fetch_add plus seven relaxed
//      atomic word stores — no locks, no branches on "is telemetry on"
//      beyond one relaxed enabled load.
//   2. Flight-recorder drop policy: rings OVERWRITE OLDEST. A crash dump
//      answers "what happened just before", so the newest events win and a
//      slow drain can never back-pressure the hot path. Overwritten events
//      are counted, never silently lost.
//   3. Crash-safe: dump_to_fd() touches only atomics, stack buffers and
//      write(2), so the SIGSEGV/SIGABRT/terminate hooks installed by
//      arm_crash_dump() can emit a parseable dump from a dying process.
//
// Ring layout: a fixed pool of `rings` rings, each `ring_capacity` (power of
// two) slots. A slot is 7 relaxed-atomic u64 words: six payload words
// (t_ns, a, b, c, d, meta) and one sequence word used as a per-slot
// publication flag — a writer claims index i via fetch_add on the ring head,
// stores 0 to the sequence (invalidating the slot for concurrent readers),
// writes the payload, then release-stores i+1. Readers accept a slot only if
// the sequence reads i+1 before AND after copying the payload, so torn
// (mid-overwrite) slots are detected and counted as drops. Threads map to
// rings by a process-wide thread ordinal; with more threads than rings the
// claim protocol degrades gracefully to multi-producer on a shared ring.
//
// All accesses to slot memory go through std::atomic, so the recorder is
// clean under ThreadSanitizer by construction, not by suppression.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aegis::telemetry {

class FlightRecorder;

/// Wide-event kinds. The numeric values are part of the on-disk dump format
/// (version header below): append new kinds, never renumber.
enum class WideEventType : std::uint16_t {
  kNone = 0,
  kSpanBegin = 1,      // a=span id, b=fnv1a(name), c=parent id, d=track
  kSpanEnd = 2,        // a=span id, b=fnv1a(name), c=0, d=track
  kMetricDelta = 3,    // a/b/c/d free-form (site-defined deltas)
  kAdmission = 4,      // a=outcome code, b=granularity, c=releases,
                       // d=epsilon_after bits (memcpy'd double)
  kPlanRotation = 5,   // a=slice, b=variant index, c=period, d=0
  kRngCheckpoint = 6,  // a=derived seed, b=stream index, c/d free-form
  kAlert = 7,          // a=alert kind, b=score bits (double), c/d free-form
  kHotExec = 8,        // a=execution count, b=superblock uid, c/d free-form
};

const char* to_string(WideEventType t) noexcept;

/// One decoded event, as produced by drain()/read_dump().
struct DrainedEvent {
  std::uint64_t t_ns = 0;  // caller-supplied clock (tick, virtual, ordinal)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  std::uint32_t tenant = 0;
  std::uint16_t type = 0;    // WideEventType
  std::uint16_t stream = 0;  // registered stream id (names via streams())
  std::uint32_t ring = 0;    // which ring recorded it
  std::uint64_t seq = 0;     // ring-local claim index (monotone per ring)
};

/// Null-safe trivially-copyable record handle, the flight-recorder analog of
/// telemetry::Counter: resolve once at construction (slow path), record from
/// anywhere (wait-free, allocation-free). A default-constructed handle is a
/// no-op, so instrumented code never branches on "is a recorder attached".
class EventHandle {
 public:
  constexpr EventHandle() noexcept = default;
  constexpr EventHandle(FlightRecorder* recorder, WideEventType type,
                        std::uint16_t stream) noexcept
      : recorder_(recorder),
        type_(static_cast<std::uint16_t>(type)),
        stream_(stream) {}

  /// Records one wide event. `t_ns` is CALLER-supplied: hot paths stamp a
  /// local ordinal (no shared-clock cache traffic), service paths stamp the
  /// registry TimeSource, virtual-clock sites stamp slice indices. The
  /// recorder never consults a clock itself, which keeps recording off the
  /// determinism/bit-identity critical path.
  void record(std::uint64_t t_ns, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0,
              std::uint32_t tenant = 0) const noexcept;

  constexpr bool attached() const noexcept { return recorder_ != nullptr; }

 private:
  FlightRecorder* recorder_ = nullptr;
  std::uint16_t type_ = 0;
  std::uint16_t stream_ = 0;
};

struct RecorderConfig {
  /// Events per ring; rounded up to a power of two. The dump keeps the last
  /// `ring_capacity` events per ring (overwrite-oldest).
  std::size_t ring_capacity = 1024;
  /// Ring pool size. Threads beyond this share rings (still correct, just
  /// multi-producer). Rings are preallocated at construction; memory is
  /// rings * ring_capacity * 56 bytes.
  std::size_t rings = 32;
  /// Construction-time master switch (set_enabled flips it later).
  bool enabled = true;
};

/// Binary dump, parsed form. `events` preserve file order (write_dump sorts
/// by (t_ns, ring, seq); crash dumps are per-ring claim order).
struct DumpDocument {
  std::uint32_t version = 0;
  std::uint64_t dropped = 0;
  std::vector<std::string> streams;
  std::vector<DrainedEvent> events;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig config = {});
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// SLOW PATH (mutex + may allocate): resolves a named event stream to a
  /// handle. Idempotent per (name): the same name maps to one stream id.
  /// Must run at construction time, outside noalloc regions — enforced by
  /// the aegis-lint `telemetry-handle` rule.
  EventHandle event_handle(std::string_view name, WideEventType type);

  /// SLOW PATH convenience for cold call sites (tools, tests): resolves the
  /// stream by name on every call. Banned inside noalloc regions by the
  /// same lint rule.
  void record_named(std::string_view name, WideEventType type,
                    std::uint64_t t_ns, std::uint64_t a = 0,
                    std::uint64_t b = 0, std::uint64_t c = 0,
                    std::uint64_t d = 0, std::uint32_t tenant = 0);

  /// Wait-free, allocation-free record. Prefer EventHandle::record.
  void record_raw(std::uint16_t type, std::uint16_t stream, std::uint64_t t_ns,
                  std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d, std::uint32_t tenant) noexcept;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Coordinated drain: snapshots every ring (tolerating concurrent
  /// writers; torn slots count as drops) and merges them into one list
  /// sorted by (t_ns, ring, seq) — deterministic and seed-stable when the
  /// recording run was.
  std::vector<DrainedEvent> drain() const;

  /// Events lost to overwrite (ring wrap) plus torn slots skipped by the
  /// most recent drain/dump.
  std::uint64_t dropped() const noexcept;

  /// Registered stream names, id-ordered (id 0 is first).
  std::vector<std::string> streams() const;

  /// Resets every ring and the drop counters. NOT safe against concurrent
  /// writers; quiesce first (tests, between bench phases).
  void clear();

  /// Writes the sorted binary dump (drain() order) with the version header.
  void write_dump(std::ostream& os) const;

  /// Async-signal-safe dump: atomics + stack buffers + write(2) only.
  /// Events are emitted in per-ring claim order with an until-EOF count so
  /// no seek is needed. Returns false if any write failed.
  bool dump_to_fd(int fd) const noexcept;
  bool dump_to_file(const char* path) const noexcept;

  /// Installs process-wide crash hooks (SIGSEGV/SIGBUS/SIGILL/SIGFPE/
  /// SIGABRT + std::set_terminate) that dump THIS recorder to
  /// "<path_prefix>.<pid>.frd" before re-raising. The last recorder armed
  /// wins; arming replaces prior hooks. Path is composed once here so the
  /// signal handler never formats strings.
  void arm_crash_dump(const char* path_prefix);

  /// The recorder most recently armed (nullptr if none).
  static FlightRecorder* armed() noexcept;

  /// On-demand dump to the armed path (gate breach, shutdown, aegis_top
  /// request). No-op unless THIS recorder is the armed one; returns whether
  /// a dump was written.
  bool trigger_armed_dump() const noexcept;

  std::size_t ring_capacity() const noexcept { return capacity_; }
  std::size_t ring_count() const noexcept { return ring_count_; }

 private:
  struct Slot {
    // words[0..5] = t_ns, a, b, c, d, meta; meta packs
    // (type << 48) | (stream << 32) | tenant.
    std::atomic<std::uint64_t> words[6];
    std::atomic<std::uint64_t> seq{0};  // claim index + 1 once published
  };
  struct alignas(64) Ring {
    std::atomic<std::uint64_t> head{0};  // next claim index
    std::unique_ptr<Slot[]> slots;
  };

  /// Copies the live tail of `ring` into `out` (ring-local claim order).
  /// Returns the number of torn slots skipped.
  std::uint64_t snapshot_ring(std::uint32_t ring_index,
                              std::vector<DrainedEvent>& out) const;

  std::atomic<bool> enabled_{true};
  std::size_t capacity_ = 0;  // power of two
  std::uint64_t mask_ = 0;
  std::size_t ring_count_ = 0;
  std::unique_ptr<Ring[]> rings_;
  mutable std::atomic<std::uint64_t> torn_{0};

  // Registration slow path. Level sits between the metrics registry (52)
  // and the span tracer (55): spans record through pre-resolved handles, so
  // the recorder lock is never taken while a span/timeline lock is held.
  // aegis-lint: lock-level(53, noblock)
  mutable std::mutex mu_;
  std::vector<std::string> stream_names_;
  // Pre-rendered stream-name table (u16 length + bytes per name) so the
  // signal-context dump can emit names without formatting or allocating.
  // Fixed capacity; names past the limit fall back to "stream#<id>" in
  // viewers. published length is atomic so dump_to_fd reads a consistent
  // prefix.
  static constexpr std::size_t kNameTableBytes = 16 * 1024;
  std::unique_ptr<unsigned char[]> name_table_;
  std::atomic<std::uint32_t> name_table_len_{0};
  std::atomic<std::uint32_t> name_table_count_{0};
};

/// Parses a binary dump written by write_dump()/dump_to_fd(). Truncated
/// event streams parse to the events present (a crash may cut the tail);
/// a bad magic/version returns nullopt.
std::optional<DumpDocument> read_dump(std::istream& is);
std::optional<DumpDocument> read_dump_file(const char* path);

/// chrome://tracing conversion: each wide event becomes a "ph":"i" instant
/// event (ts in µs, tid = ring) named by its stream, payload in args.
/// Deterministic: events emit in document order.
void write_recorder_trace_json(const DumpDocument& doc, std::ostream& os);

}  // namespace aegis::telemetry
