// Span-based phase tracer.
//
// A span is a named interval with a parent link, a track (rendered as a
// thread row in chrome://tracing) and one free-form integer argument.
// Timestamps come from the attached TimeSource, so traces are deterministic
// under TickTimeSource/ManualTimeSource and real-time under WallTimeSource.
//
// Recording takes a short mutex (level 55, above every data-plane lock) and
// appends to a vector — fine for phase-granularity events (campaign stages,
// per-shard work items, admission windows), NOT for per-gadget-execution
// granularity; that is what counters are for.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/time_source.hpp"

namespace aegis::telemetry {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = no parent
  std::string name;
  std::string category;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  /// Rendered as the "thread" row in trace viewers; shard/worker index.
  std::uint32_t track = 0;
  /// One free-form argument (tenant id, batch size, shard count, ...).
  std::uint64_t arg = 0;
};

class SpanTracer {
 public:
  explicit SpanTracer(TimeSource* time_source) : time_(time_source) {}
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void set_time_source(TimeSource* time_source);

  /// Mirrors span begin/end into the flight recorder through pre-resolved
  /// handles (Registry wires this at construction). Wide events carry
  /// (t, span id, fnv1a(name), parent, track) so the crash dump shows what
  /// phases were in flight without the tracer's heap-backed span map.
  void set_recorder(EventHandle begin_event, EventHandle end_event) {
    begin_event_ = begin_event;
    end_event_ = end_event;
  }

  /// Opens a span stamped with the current time; returns its id (never 0).
  std::uint64_t begin(std::string_view name, std::string_view category,
                      std::uint32_t track = 0, std::uint64_t arg = 0,
                      std::uint64_t parent = 0);

  /// Closes an open span; unknown ids are ignored.
  void end(std::uint64_t id);

  /// Records an already-timed interval (e.g. stamped from the simulator's
  /// virtual clock) without consulting the TimeSource.
  void record_complete(std::string_view name, std::string_view category,
                       std::uint64_t begin_ns, std::uint64_t end_ns,
                       std::uint32_t track = 0, std::uint64_t arg = 0,
                       std::uint64_t parent = 0);

  /// Completed spans sorted by (begin_ns, id) — deterministic given a
  /// deterministic TimeSource.
  std::vector<Span> completed() const;

  void clear();

 private:
  // aegis-lint: lock-level(55, noblock)
  mutable std::mutex mu_;
  TimeSource* time_;
  EventHandle begin_event_;  // wait-free; safe to fire while holding mu_
  EventHandle end_event_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Span> open_;
  std::vector<Span> completed_;
};

/// RAII span with automatic parent inference: nested ScopedSpans on the same
/// thread link to the innermost enclosing one via a thread-local stack.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer& tracer, std::string_view name,
             std::string_view category, std::uint32_t track = 0,
             std::uint64_t arg = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const noexcept { return id_; }

 private:
  SpanTracer* tracer_;
  std::uint64_t id_;
};

}  // namespace aegis::telemetry
