// Online anomaly layer on top of the telemetry plane (ROADMAP items 3/5):
//
//   * BudgetForecaster — per-tenant ε-exhaustion ETA from the slope of the
//     BudgetTimeline's (t_ns, epsilon_after) series. Exposed as gauges
//     (aegis_tenant_eta_ns / aegis_tenant_eps_burn_per_s) and consumed by
//     BudgetGovernor as a proactive-degradation hint: a tenant forecast to
//     exhaust inside the configured horizon is degraded one granularity
//     step BEFORE the accountant forces it, trading temporal resolution
//     early for admission continuity later.
//   * AttackProbabilityMonitor — online score of how attacker-like a
//     session's counter-read behaviour is, from event-set overlap with the
//     backend's attack set, read-cadence regularity and single-stepping
//     burstiness (the features the seceval frontier attackers actually
//     exhibit; thresholds are calibrated against those profiles by test).
//
// Both emit kAlert wide events into the flight recorder and Prometheus
// metrics. Neither draws randomness nor perturbs any guarded computation,
// so attaching them preserves the fleet-vs-standalone bit-identity
// contract.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "telemetry/budget_timeline.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace aegis::telemetry {

class Registry;

/// Alert kinds carried in kAlert wide events (field `a`).
enum class AlertKind : std::uint64_t {
  kBudgetExhaustionSoon = 1,
  kAttackSuspected = 2,
};

struct BudgetForecast {
  bool valid = false;
  /// Least-squares dε/dt over the observation window (per nanosecond).
  double slope_eps_per_ns = 0.0;
  double epsilon = 0.0;  // last observed advanced-composition ε
  double cap = 0.0;
  /// Nanoseconds from the last observation until ε crosses the cap.
  /// Infinity when the slope is non-positive or too few points arrived.
  double eta_ns = 0.0;
};

struct ForecasterConfig {
  /// Sliding window of admission events per tenant the slope fits over.
  std::size_t window = 32;
  /// Minimum points before a forecast is considered valid.
  std::size_t min_points = 3;
  /// Emit a kBudgetExhaustionSoon alert when eta_ns falls below this
  /// horizon (0 disables alerting; forecasts still compute).
  std::uint64_t alert_horizon_ns = 0;
};

/// Online per-tenant ε-exhaustion forecaster. Observed events arrive from
/// BudgetGovernor::record_decision (submission order, under the governor's
/// level-15 lock — this class's lock sits above it at level 17, below the
/// metrics registry it publishes gauges to).
class BudgetForecaster {
 public:
  /// `telemetry` null resolves to Registry::global(). Gauges and alert
  /// events land in that registry's metrics plane / flight recorder.
  explicit BudgetForecaster(ForecasterConfig config = {},
                            Registry* telemetry = nullptr);
  BudgetForecaster(const BudgetForecaster&) = delete;
  BudgetForecaster& operator=(const BudgetForecaster&) = delete;

  /// Feeds one admission decision. "reset" events clear the tenant's
  /// window (a new budget grant restarts the burn-down). Named `ingest`
  /// (not `observe`/`record`) so this allocating method never joins the
  /// name groups of the wait-free hot-path recording ops for the
  /// interprocedural linter.
  void ingest(const BudgetEvent& event);

  /// Bulk replay, e.g. from BudgetTimeline::events() at attach time.
  void ingest(const std::vector<BudgetEvent>& events);

  BudgetForecast forecast(std::uint64_t tenant_id) const;

  std::uint64_t alerts() const noexcept { return alerts_.value(); }

 private:
  struct TenantSeries {
    std::deque<BudgetEvent> points;  // last `window` non-reset events
    Gauge eta_gauge;
    Gauge burn_gauge;
  };

  /// Caller holds mu_. Fits the window; returns an invalid forecast when
  /// under min_points or the slope is non-positive.
  BudgetForecast fit(const TenantSeries& series) const;

  ForecasterConfig config_;
  Registry* telemetry_;
  EventHandle alert_event_;
  Counter alerts_;
  // aegis-lint: lock-level(17, noblock)
  mutable std::mutex mu_;
  std::map<std::uint64_t, TenantSeries> tenants_;
};

/// Per-session counter-access features, computed by the caller (the
/// SessionManager knows the template's monitored event set; the seceval
/// harness knows its attackers' stepping behaviour).
struct SessionFeatures {
  std::uint64_t tenant_id = 0;
  /// Events the session's host-side monitor reads each slice.
  std::vector<std::uint32_t> monitored_events;
  /// Coefficient of variation of inter-read gaps (0 = perfectly periodic,
  /// the signature of a sampling attacker; benign readers are bursty).
  double read_gap_cv = 1.0;
  /// Fraction of slices advanced via single-stepping (SEV-Step style).
  double stepped_fraction = 0.0;
  std::uint64_t slices = 0;
};

struct AttackScore {
  double probability = 0.0;  // logistic score in [0, 1]
  bool alert = false;
  // Feature values that produced the score (for dashboards/forensics).
  double overlap = 0.0;
  double cadence = 0.0;
  double burst = 0.0;
};

struct AttackMonitorConfig {
  /// The vendor's attack-relevant event set (PmuBackend::attack_events()).
  std::vector<std::uint32_t> attack_events;
  /// Alert threshold on the logistic score. 0.5 separates the committed
  /// seceval frontier attacker profiles (static/adaptive/fusion/stepping,
  /// all >= 0.6) from benign mixed-event readers (< 0.25); the calibration
  /// test pins both sides.
  double threshold = 0.5;
  /// When true, an alert also triggers the armed flight-recorder dump
  /// (forensic snapshot of the instants before the detection).
  bool dump_on_alert = false;
};

/// Deterministic online attack-probability scorer. score() is pure;
/// ingest() also publishes gauges, bumps the alert counter and emits a
/// kAttackSuspected wide event when the threshold is crossed.
class AttackProbabilityMonitor {
 public:
  explicit AttackProbabilityMonitor(AttackMonitorConfig config = {},
                                    Registry* telemetry = nullptr);
  AttackProbabilityMonitor(const AttackProbabilityMonitor&) = delete;
  AttackProbabilityMonitor& operator=(const AttackProbabilityMonitor&) = delete;

  AttackScore score(const SessionFeatures& features) const;
  AttackScore ingest(const SessionFeatures& features);

  /// Replaces the attack-relevant event set — the service calls this once
  /// the PMU backend (and with it PmuBackend::attack_events()) is known,
  /// which is after the monitor is constructed. Thread-safe; scores
  /// computed after the call use the new set.
  void set_attack_events(std::vector<std::uint32_t> attack_events);
  std::vector<std::uint32_t> attack_events() const;

  std::uint64_t alerts() const noexcept { return alerts_.value(); }
  const AttackMonitorConfig& config() const noexcept { return config_; }

 private:
  AttackMonitorConfig config_;
  Registry* telemetry_;
  EventHandle alert_event_;
  Counter alerts_;
  Counter sessions_scored_;
  // aegis-lint: lock-level(18, noblock)
  mutable std::mutex mu_;
  /// Seeded from config_.attack_events; lives under mu_ so
  /// set_attack_events can swap it after construction (config_ itself stays
  /// immutable — config().attack_events reflects the construction-time
  /// value, attack_events() the live set).
  std::vector<std::uint32_t> attack_events_;
  std::map<std::uint64_t, Gauge> tenant_gauges_;
};

}  // namespace aegis::telemetry
