// Minimal JSON reader for telemetry snapshots.
//
// Aegis has no external JSON dependency; this recursive-descent parser covers
// exactly what the snapshot/trace exporters emit (objects, arrays, strings
// with the escapes json_escape produces, numbers, booleans, null). It exists
// so tools/aegis_top and the exporter round-trip tests can consume snapshots
// without adding a library.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aegis::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Ordered map keeps traversal deterministic.
  std::map<std::string, JsonValue> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Object member lookup; returns a shared null value when absent.
  const JsonValue& at(std::string_view key) const;
  /// Number as uint64 (truncating); 0 when not a number.
  std::uint64_t as_u64() const noexcept;
};

struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses one JSON document; throws JsonParseError on malformed input or
/// trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace aegis::telemetry
