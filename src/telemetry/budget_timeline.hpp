// Per-tenant ε-spend timeline.
//
// The BudgetGovernor's ServiceStats view answers "where is tenant T now";
// this timeline answers "how did it get there": every admission decision
// (admit / degrade / refuse) and budget reset is appended as an event
// carrying the post-decision advanced-composition ε. Exporters turn it into
// chrome://tracing counter tracks and a JSON series for aegis_top.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/time_source.hpp"

namespace aegis::telemetry {

struct BudgetEvent {
  /// Process-order sequence number (stable tiebreak for equal timestamps).
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::uint64_t tenant_id = 0;
  /// "admit" | "degrade" | "refuse" | "reset".
  std::string outcome;
  /// Granularity granted for this window (0 for refuse/reset).
  std::uint32_t granularity = 0;
  /// Releases charged by this decision (0 for refuse/reset).
  std::uint64_t releases = 0;
  /// Advanced-composition ε after the decision was applied.
  double epsilon_after = 0.0;
  double epsilon_cap = 0.0;
};

class BudgetTimeline {
 public:
  explicit BudgetTimeline(TimeSource* time_source) : time_(time_source) {}
  BudgetTimeline(const BudgetTimeline&) = delete;
  BudgetTimeline& operator=(const BudgetTimeline&) = delete;

  void set_time_source(TimeSource* time_source);

  /// Stamps seq + t_ns and appends; returns a copy of the stamped event so
  /// callers (governor → forecaster, wide-event mirror) can reuse the stamp
  /// without consulting the TimeSource again. Allocates; callers hold no
  /// data-plane lock below level 57 when stamping (governor's level-15
  /// lock is fine: lock order is ascending). Deliberately NOT named
  /// `record`: that name group belongs to the wait-free
  /// EventHandle::record, and an allocating member in the same group would
  /// poison every noalloc hot path for the interprocedural linter.
  BudgetEvent stamp(std::uint64_t tenant_id, std::string_view outcome,
                    std::uint32_t granularity, std::uint64_t releases,
                    double epsilon_after, double epsilon_cap);

  /// Events in recording order (seq ascending).
  std::vector<BudgetEvent> events() const;

  void clear();

 private:
  // aegis-lint: lock-level(57, noblock)
  mutable std::mutex mu_;
  TimeSource* time_;
  std::uint64_t next_seq_ = 0;
  std::vector<BudgetEvent> events_;
};

}  // namespace aegis::telemetry
