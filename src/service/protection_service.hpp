// ProtectionService: the host-side Aegis daemon (multi-tenant simulation).
//
// Related work frames obfuscation defenses as long-running runtime
// services with explicit budgets, not one-shot tools (Obelix; SEV-Step's
// always-on per-VM loop). This facade turns the Aegis library into that
// service:
//
//   tenants ──submit()──▶ BoundedQueue ──▶ dispatcher thread
//                (backpressure)               │ batches by template
//                                             ▼
//             BudgetGovernor ◀── admission ── SessionManager ──▶ ThreadPool
//                  │                               │
//             per-tenant eps caps           per-session VM+obfuscator
//
// Templates are registered once per (CPU family, workload, config) via the
// single-flight TemplateCache (warm-started from disk when configured);
// session submissions reference a registered template id. stats() returns
// a consistent ServiceStats snapshot for observability.
#pragma once

#include <chrono>
#include <string>
#include <thread>

#include "service/bounded_queue.hpp"
#include "service/session_manager.hpp"
#include "service/template_cache.hpp"
#include "telemetry/anomaly.hpp"
#include "telemetry/metrics.hpp"

namespace aegis::service {

struct ServiceConfig {
  /// Session-pool workers (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Submission-queue bound; submit() blocks past this (backpressure).
  std::size_t queue_capacity = 64;
  /// Max sessions the dispatcher hands the pool per fleet batch.
  std::size_t batch_size = 16;
  GovernorConfig governor;
  TemplateCacheConfig cache;
  /// Shared telemetry sink for the whole service (metrics, phase spans,
  /// ε timeline). Null = the service owns a private registry, so
  /// per-instance stats stay exact; the cache/governor/manager sinks are
  /// overridden to point at the resolved registry either way.
  telemetry::Registry* telemetry = nullptr;
  /// Online anomaly layer (telemetry/anomaly.hpp). The ε-exhaustion
  /// forecaster is always constructed and fed every governor decision —
  /// pure observability; it only CHANGES admission when
  /// governor.proactive_horizon_ns is set. The attack monitor scores every
  /// executed session; when attack_monitor.attack_events is empty it is
  /// populated from the first registered engine's PMU backend
  /// (PmuBackend::attack_events()).
  telemetry::ForecasterConfig forecaster;
  telemetry::AttackMonitorConfig attack_monitor;
  /// When non-empty, shutdown() writes the merged flight-recorder binary
  /// dump of the service registry here after the dispatcher drains.
  std::string shutdown_dump_path;
};

struct SessionSubmission {
  std::size_t template_id = 0;
  SessionRequest request;
};

struct CompletedSession {
  SessionResult result;
  double latency_seconds = 0.0;  // enqueue -> session completion
};

class ProtectionService {
 public:
  explicit ProtectionService(ServiceConfig config = {});
  ~ProtectionService();

  ProtectionService(const ProtectionService&) = delete;
  ProtectionService& operator=(const ProtectionService&) = delete;

  /// Registers (or joins) the protection template for this (engine,
  /// application, offline config): offline analysis through the
  /// single-flight TemplateCache, then one calibration pass shared by all
  /// sessions. Concurrent registrations of the same key perform exactly
  /// one analysis and one calibration. Returns the template id sessions
  /// reference.
  std::size_t register_template(
      const core::Aegis& engine, const workload::Workload& application,
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      const core::OfflineConfig& offline, dp::MechanismConfig mechanism,
      core::ObfuscatorBuildOptions options = {},
      std::uint64_t seed = 0x0B5EULL);

  const ProtectionTemplate& protection_template(std::size_t template_id) const;

  void set_tenant_cap(std::uint64_t tenant_id, double epsilon_cap);

  /// Enqueues one session; blocks while the queue is full (backpressure).
  /// Returns false iff the service is shutting down.
  bool submit(SessionSubmission submission);

  /// Blocks until every accepted submission has been dispatched and run.
  void drain();

  /// Stops accepting work, drains the queue and joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;

  /// Moves out the finished sessions accumulated since the last call.
  std::vector<CompletedSession> take_completed();

  BudgetGovernor& governor() noexcept { return governor_; }
  TemplateCache& cache() noexcept { return cache_; }
  telemetry::BudgetForecaster& forecaster() noexcept { return forecaster_; }
  telemetry::AttackProbabilityMonitor& attack_monitor() noexcept {
    return attack_monitor_;
  }
  std::size_t num_threads() const noexcept { return manager_.num_threads(); }

  /// The registry every component of this service records into (the
  /// config-supplied one, or the service-owned private registry).
  telemetry::Registry& telemetry() const noexcept { return *telemetry_; }

 private:
  struct TimedSubmission {
    SessionSubmission submission;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatch_loop();

  ServiceConfig config_;
  std::unique_ptr<telemetry::Registry> owned_telemetry_;
  telemetry::Registry* telemetry_;  // resolved (never null)
  // Anomaly layer, constructed before the governor so the governor config
  // can point at forecaster_ (a config-supplied forecaster wins).
  telemetry::BudgetForecaster forecaster_;
  telemetry::AttackProbabilityMonitor attack_monitor_;
  TemplateCache cache_;
  BudgetGovernor governor_;
  SessionManager manager_;
  BoundedQueue<TimedSubmission> queue_;
  // Registry-backed service counters/gauges (handles resolved once).
  telemetry::Counter submitted_;
  telemetry::Gauge queue_depth_;

  // aegis-lint: lock-level(30, noblock)
  mutable std::mutex mu_;  // guards templates_, completed_, pending_
  std::condition_variable idle_cv_;
  std::vector<std::unique_ptr<ProtectionTemplate>> templates_;
  std::unordered_map<TemplateKey, std::size_t, TemplateKeyHash> template_ids_;
  std::vector<CompletedSession> completed_;
  std::size_t pending_ = 0;    // accepted but not yet finished

  std::thread dispatcher_;
  bool stopped_ = false;
};

}  // namespace aegis::service
