#include "service/budget_governor.hpp"

#include <cstring>
#include <string>

#include "telemetry/anomaly.hpp"
#include "telemetry/registry.hpp"

namespace aegis::service {

namespace {

std::size_t releases_for(std::size_t slices, std::size_t granularity) {
  return (slices + granularity - 1) / granularity;
}

std::string tenant_metric(const char* base, std::uint64_t tenant_id) {
  return std::string(base) + "{tenant=\"" + std::to_string(tenant_id) + "\"}";
}

/// Outcome code carried in kAdmission wide events (field `a`); "reset" uses
/// 3 (it has no Admission enumerator).
std::uint64_t outcome_code(Admission a) noexcept {
  return static_cast<std::uint64_t>(a);
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::kAdmit: return "admit";
    case Admission::kDegrade: return "degrade";
    case Admission::kRefuse: return "refuse";
  }
  return "?";
}

BudgetGovernor::BudgetGovernor(GovernorConfig config)
    : config_(config),
      telemetry_(&telemetry::resolve(config.telemetry)),
      decision_event_(telemetry_->recorder().event_handle(
          "governor.decision", telemetry::WideEventType::kAdmission)),
      proactive_degrades_(telemetry_->metrics().counter(
          "aegis_governor_proactive_degrades_total")) {}

BudgetGovernor::Tenant& BudgetGovernor::tenant_for(std::uint64_t tenant_id) {
  auto [it, inserted] = tenants_.try_emplace(tenant_id);
  Tenant& tenant = it->second;
  if (inserted) {
    tenant.epsilon_cap = config_.default_epsilon_cap;
    // Registration takes the registry's level-50 lock while we hold the
    // level-15 governor lock: ascending, so lock-order clean.
    tenant.epsilon_gauge = telemetry_->metrics().gauge(
        tenant_metric("aegis_tenant_epsilon_advanced", tenant_id));
    tenant.remaining_gauge = telemetry_->metrics().gauge(
        tenant_metric("aegis_tenant_epsilon_remaining", tenant_id));
    tenant.remaining_gauge.set(tenant.epsilon_cap);
  }
  return tenant;
}

void BudgetGovernor::set_tenant_cap(std::uint64_t tenant_id,
                                    double epsilon_cap) {
  std::lock_guard lock(mu_);
  Tenant& tenant = tenant_for(tenant_id);
  tenant.epsilon_cap = epsilon_cap;
  tenant.remaining_gauge.set(
      // aegis-lint: lock-ok(accountant.remaining is EpsilonAccountant::remaining, a pure computation; only the name collides with this method)
      tenant.accountant.remaining(epsilon_cap, config_.delta));
}

AdmissionDecision BudgetGovernor::request_window(std::uint64_t tenant_id,
                                                 std::size_t slices,
                                                 double per_slice_epsilon) {
  std::lock_guard lock(mu_);
  Tenant& tenant = tenant_for(tenant_id);

  AdmissionDecision decision;
  if (slices == 0 || per_slice_epsilon <= 0.0) {
    // A zero-cost window (e.g. the d* mechanism, whose guarantee is
    // series-level and pre-paid) is always admitted at full granularity.
    decision.outcome = Admission::kAdmit;
    decision.epsilon_after = tenant.accountant.advanced_epsilon(config_.delta);
    ++tenant.admitted;
    record_decision(tenant_id, tenant, decision);
    return decision;
  }

  // Proactive degradation (ROADMAP item 5): when the forecaster predicts
  // this tenant exhausts its cap inside the horizon, start the ladder at
  // granularity 2 — fewer releases per window now, instead of a forced
  // refuse later. The forecast lock (level 17) nests above ours (15).
  std::size_t g_start = 1;
  if (config_.forecaster != nullptr && config_.proactive_horizon_ns > 0) {
    const telemetry::BudgetForecast fc =
        config_.forecaster->forecast(tenant_id);
    if (fc.valid &&
        fc.eta_ns < static_cast<double>(config_.proactive_horizon_ns) &&
        config_.max_granularity >= 2) {
      g_start = 2;
      proactive_degrades_.inc();
    }
  }

  for (std::size_t g = g_start; g <= config_.max_granularity; g *= 2) {
    const std::size_t releases = releases_for(slices, g);
    const double after = tenant.accountant.advanced_epsilon_if(
        per_slice_epsilon, releases, config_.delta);
    if (after <= tenant.epsilon_cap) {
      tenant.accountant.record_releases(per_slice_epsilon, releases);
      decision.outcome = g == 1 ? Admission::kAdmit : Admission::kDegrade;
      decision.granularity = g;
      decision.releases = releases;
      decision.epsilon_after = after;
      if (g == 1) {
        ++tenant.admitted;
      } else {
        ++tenant.degraded;
      }
      record_decision(tenant_id, tenant, decision);
      return decision;
    }
  }

  decision.outcome = Admission::kRefuse;
  decision.granularity = 0;
  decision.releases = 0;
  decision.epsilon_after = tenant.accountant.advanced_epsilon(config_.delta);
  ++tenant.refused;
  record_decision(tenant_id, tenant, decision);
  if (config_.dump_on_refuse) {
    // Budget gate breach: snapshot the flight recorder so forensics can see
    // the admission/span history that led here. No-op unless armed.
    telemetry_->recorder().trigger_armed_dump();
  }
  return decision;
}

// Caller holds mu_ (level 15); timeline/gauge sinks are higher levels, so
// the order is ascending. The ε timeline gets one event per decision and
// the per-tenant gauges track the post-decision spend.
void BudgetGovernor::record_decision(std::uint64_t tenant_id,
                                     const Tenant& tenant,
                                     const AdmissionDecision& decision) {
  const telemetry::BudgetEvent event = telemetry_->budget().stamp(
      tenant_id, to_string(decision.outcome),
      static_cast<std::uint32_t>(decision.granularity), decision.releases,
      decision.epsilon_after, tenant.epsilon_cap);
  // Mirror into the flight recorder (wait-free) with the timeline's stamp,
  // and feed the online forecaster, both in submission order.
  decision_event_.record(event.t_ns, outcome_code(decision.outcome),
                         decision.granularity, decision.releases,
                         double_bits(decision.epsilon_after),
                         static_cast<std::uint32_t>(tenant_id));
  if (config_.forecaster != nullptr) {
    config_.forecaster->ingest(event);
  }
  tenant.epsilon_gauge.set(decision.epsilon_after);
  tenant.remaining_gauge.set(tenant.epsilon_cap - decision.epsilon_after);
}

double BudgetGovernor::remaining(std::uint64_t tenant_id) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return config_.default_epsilon_cap;
  // aegis-lint: lock-ok(accountant.remaining is EpsilonAccountant::remaining, a pure computation; only the name collides with this method)
  return it->second.accountant.remaining(it->second.epsilon_cap,
                                         config_.delta);
}

void BudgetGovernor::reset_tenant(std::uint64_t tenant_id) {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return;
  it->second.accountant.reset();
  it->second.admitted = 0;
  it->second.degraded = 0;
  it->second.refused = 0;
  const telemetry::BudgetEvent event = telemetry_->budget().stamp(
      tenant_id, "reset", 0, 0, 0.0, it->second.epsilon_cap);
  decision_event_.record(event.t_ns, /*outcome=*/3, 0, 0, double_bits(0.0),
                         static_cast<std::uint32_t>(tenant_id));
  if (config_.forecaster != nullptr) {
    config_.forecaster->ingest(event);
  }
  it->second.epsilon_gauge.set(0.0);
  it->second.remaining_gauge.set(it->second.epsilon_cap);
}

TenantBudgetStats BudgetGovernor::snapshot(std::uint64_t id,
                                           const Tenant& t) const {
  TenantBudgetStats stats;
  stats.tenant_id = id;
  stats.releases = t.accountant.releases();
  stats.basic_epsilon = t.accountant.basic_epsilon();
  stats.advanced_epsilon = t.accountant.advanced_epsilon(config_.delta);
  stats.epsilon_cap = t.epsilon_cap;
  stats.admitted = t.admitted;
  stats.degraded = t.degraded;
  stats.refused = t.refused;
  return stats;
}

TenantBudgetStats BudgetGovernor::usage(std::uint64_t tenant_id) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    TenantBudgetStats stats;
    stats.tenant_id = tenant_id;
    stats.epsilon_cap = config_.default_epsilon_cap;
    return stats;
  }
  return snapshot(tenant_id, it->second);
}

std::vector<TenantBudgetStats> BudgetGovernor::all_usage() const {
  std::lock_guard lock(mu_);
  std::vector<TenantBudgetStats> all;
  all.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    all.push_back(snapshot(id, tenant));
  }
  return all;
}

}  // namespace aegis::service
