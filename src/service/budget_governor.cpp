#include "service/budget_governor.hpp"

namespace aegis::service {

namespace {

std::size_t releases_for(std::size_t slices, std::size_t granularity) {
  return (slices + granularity - 1) / granularity;
}

}  // namespace

const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::kAdmit: return "admit";
    case Admission::kDegrade: return "degrade";
    case Admission::kRefuse: return "refuse";
  }
  return "?";
}

BudgetGovernor::BudgetGovernor(GovernorConfig config) : config_(config) {}

void BudgetGovernor::set_tenant_cap(std::uint64_t tenant_id,
                                    double epsilon_cap) {
  std::lock_guard lock(mu_);
  tenants_[tenant_id].epsilon_cap = epsilon_cap;
}

AdmissionDecision BudgetGovernor::request_window(std::uint64_t tenant_id,
                                                 std::size_t slices,
                                                 double per_slice_epsilon) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant_id);
  Tenant& tenant = it->second;
  if (inserted) tenant.epsilon_cap = config_.default_epsilon_cap;

  AdmissionDecision decision;
  if (slices == 0 || per_slice_epsilon <= 0.0) {
    // A zero-cost window (e.g. the d* mechanism, whose guarantee is
    // series-level and pre-paid) is always admitted at full granularity.
    decision.outcome = Admission::kAdmit;
    decision.epsilon_after = tenant.accountant.advanced_epsilon(config_.delta);
    ++tenant.admitted;
    return decision;
  }

  for (std::size_t g = 1; g <= config_.max_granularity; g *= 2) {
    const std::size_t releases = releases_for(slices, g);
    const double after = tenant.accountant.advanced_epsilon_if(
        per_slice_epsilon, releases, config_.delta);
    if (after <= tenant.epsilon_cap) {
      tenant.accountant.record_releases(per_slice_epsilon, releases);
      decision.outcome = g == 1 ? Admission::kAdmit : Admission::kDegrade;
      decision.granularity = g;
      decision.releases = releases;
      decision.epsilon_after = after;
      if (g == 1) {
        ++tenant.admitted;
      } else {
        ++tenant.degraded;
      }
      return decision;
    }
  }

  decision.outcome = Admission::kRefuse;
  decision.granularity = 0;
  decision.releases = 0;
  decision.epsilon_after = tenant.accountant.advanced_epsilon(config_.delta);
  ++tenant.refused;
  return decision;
}

double BudgetGovernor::remaining(std::uint64_t tenant_id) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return config_.default_epsilon_cap;
  return it->second.accountant.remaining(it->second.epsilon_cap,
                                         config_.delta);
}

void BudgetGovernor::reset_tenant(std::uint64_t tenant_id) {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return;
  it->second.accountant.reset();
  it->second.admitted = 0;
  it->second.degraded = 0;
  it->second.refused = 0;
}

TenantBudgetStats BudgetGovernor::snapshot(std::uint64_t id,
                                           const Tenant& t) const {
  TenantBudgetStats stats;
  stats.tenant_id = id;
  stats.releases = t.accountant.releases();
  stats.basic_epsilon = t.accountant.basic_epsilon();
  stats.advanced_epsilon = t.accountant.advanced_epsilon(config_.delta);
  stats.epsilon_cap = t.epsilon_cap;
  stats.admitted = t.admitted;
  stats.degraded = t.degraded;
  stats.refused = t.refused;
  return stats;
}

TenantBudgetStats BudgetGovernor::usage(std::uint64_t tenant_id) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    TenantBudgetStats stats;
    stats.tenant_id = tenant_id;
    stats.epsilon_cap = config_.default_epsilon_cap;
    return stats;
  }
  return snapshot(tenant_id, it->second);
}

std::vector<TenantBudgetStats> BudgetGovernor::all_usage() const {
  std::lock_guard lock(mu_);
  std::vector<TenantBudgetStats> all;
  all.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    all.push_back(snapshot(id, tenant));
  }
  return all;
}

}  // namespace aegis::service
