#include "service/session_manager.hpp"

#include "telemetry/anomaly.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "util/rng.hpp"

namespace aegis::service {

namespace {

// Fixed stream indices of the per-tenant seed tree. Adding a stream is
// backward-compatible; reordering is not (it would silently change every
// tenant's trace).
enum SeedStream : std::uint64_t {
  kVmStream = 1,
  kMonitorStream = 2,
  kVisitStream = 3,
  kObfuscatorStream = 4,
};

// Virtual-clock scale for injection-window spans: one monitoring slice
// renders as 1 µs in trace viewers. Purely presentational.
constexpr std::uint64_t kSliceNs = 1000;

}  // namespace

ProtectionTemplate make_protection_template(
    const core::Aegis& engine,
    std::shared_ptr<const core::OfflineResult> analysis,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    dp::MechanismConfig mechanism, core::ObfuscatorBuildOptions options,
    std::uint64_t seed, std::size_t monitor_top_events) {
  ProtectionTemplate tpl;
  tpl.engine = &engine;
  tpl.analysis = std::move(analysis);
  // One calibration pass (runs the secret set); its sized config is the
  // template every session reuses with its own seed.
  const auto calibrated = engine.make_obfuscator(*tpl.analysis, secrets,
                                                 mechanism, options, seed);
  tpl.obf_config = calibrated->config();
  tpl.monitored_events = tpl.analysis->top_events(monitor_top_events);
  return tpl;
}

SessionResult run_protected_session(const ProtectionTemplate& tpl,
                                    const SessionRequest& request,
                                    std::size_t granularity,
                                    telemetry::Registry* telemetry) {
  SessionResult result;
  result.tenant_id = request.tenant_id;
  result.granularity = granularity;

  obf::ObfuscatorConfig config = tpl.obf_config;
  config.seed = util::split_mix64(request.seed, kObfuscatorStream);
  obf::EventObfuscator obfuscator(tpl.engine->database(),
                                  tpl.engine->specification(),
                                  tpl.analysis->cover, config);
  sim::SliceAgent agent = obf::coarsen_agent(obfuscator.session(), granularity);
  if (telemetry != nullptr) {
    // Injection-window spans, stamped from the session's virtual clock (the
    // slice index) rather than the TimeSource: each noise-refresh fire
    // covers the granularity-wide window it protects. The wrapper draws no
    // randomness, so traces stay bit-identical with telemetry attached.
    telemetry::SpanTracer* tracer = &telemetry->spans();
    const std::uint64_t tenant = request.tenant_id;
    const std::size_t window = granularity == 0 ? 1 : granularity;
    agent = [inner = std::move(agent), tracer, tenant,
             window](sim::VirtualMachine& vm, std::size_t t) {
      if (t % window == 0) {
        tracer->record_complete("inject.window", "obf", t * kSliceNs,
                                (t + window) * kSliceNs,
                                static_cast<std::uint32_t>(tenant), tenant);
      }
      inner(vm, t);
    };
  }

  sim::VirtualMachine vm(tpl.vm, util::split_mix64(request.seed, kVmStream));
  sim::HostMonitor monitor(tpl.engine->database(),
                           util::split_mix64(request.seed, kMonitorStream));
  result.trace = monitor.monitor(
      vm, request.application->visit(util::split_mix64(request.seed, kVisitStream)),
      tpl.monitored_events, request.slices, agent);
  result.injected_repetitions = obfuscator.total_injected_repetitions();
  return result;
}

SessionManager::SessionManager(std::size_t num_threads,
                               BudgetGovernor& governor,
                               telemetry::Registry* telemetry)
    : pool_(num_threads),
      governor_(&governor),
      owned_telemetry_(telemetry == nullptr
                           ? std::make_unique<telemetry::Registry>()
                           : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()),
      started_(telemetry_->metrics().counter("aegis_sessions_started_total")),
      completed_(
          telemetry_->metrics().counter("aegis_sessions_completed_total")),
      refused_(telemetry_->metrics().counter("aegis_sessions_refused_total")),
      degraded_(telemetry_->metrics().counter("aegis_sessions_degraded_total")),
      active_(telemetry_->metrics().gauge("aegis_sessions_active")),
      rng_event_(telemetry_->recorder().event_handle(
          "session.rng", telemetry::WideEventType::kRngCheckpoint)) {}

SessionManager::~SessionManager() = default;

std::vector<SessionResult> SessionManager::run_fleet(
    const ProtectionTemplate& tpl,
    const std::vector<SessionRequest>& requests) {
  std::vector<SessionResult> results(requests.size());

  // Phase 1 — admission, serial and in submission order: governor state is
  // shared per tenant, so decision order must not depend on scheduling.
  std::vector<std::size_t> granted(requests.size(), 0);
  {
    telemetry::ScopedSpan admission(telemetry_->spans(), "fleet.admission",
                                    "service", 0, requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const SessionRequest& request = requests[i];
      const AdmissionDecision decision = governor_->request_window(
          request.tenant_id, request.slices, request.per_slice_epsilon);
      results[i].tenant_id = request.tenant_id;
      results[i].outcome = decision.outcome;
      results[i].granularity = decision.granularity;
      results[i].epsilon_after = decision.epsilon_after;
      if (decision.outcome == Admission::kRefuse) {
        refused_.inc();
      } else {
        granted[i] = decision.granularity;
        if (decision.outcome == Admission::kDegrade) degraded_.inc();
      }
    }
  }

  // Phase 2 — execution, parallel: each admitted session writes only its
  // own index-keyed slot and derives all randomness from its request seed,
  // so results are bit-identical at every worker count.
  pool_.parallel_for(requests.size(), [&](std::size_t i) {
    if (granted[i] == 0) return;  // refused
    started_.inc();
    active_.add(1.0);
    telemetry::ScopedSpan span(telemetry_->spans(), "fleet.session", "service",
                               static_cast<std::uint32_t>(i),
                               requests[i].tenant_id);
    // RNG-stream checkpoint: the request seed plus the derived stream seeds
    // this session will consume, stamped with the request index. Wait-free
    // and RNG-free, so the trace stays bit-identical.
    rng_event_.record(
        /*t_ns=*/i, requests[i].seed,
        util::split_mix64(requests[i].seed, kVmStream),
        util::split_mix64(requests[i].seed, kMonitorStream),
        util::split_mix64(requests[i].seed, kObfuscatorStream),
        static_cast<std::uint32_t>(requests[i].tenant_id));
    const Admission outcome = results[i].outcome;
    const double epsilon_after = results[i].epsilon_after;
    results[i] = run_protected_session(tpl, requests[i], granted[i], telemetry_);
    results[i].outcome = outcome;
    results[i].epsilon_after = epsilon_after;
    active_.add(-1.0);
    completed_.inc();
  });

  // Phase 3 — attack scoring, serial and in submission order again (the
  // monitor mutates shared gauge/alert state). The HostMonitor reads the
  // template's monitored set exactly once per slice, i.e. perfectly
  // periodically (read_gap_cv = 0), with no single-stepping.
  if (attack_monitor_ != nullptr) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (granted[i] == 0) continue;
      telemetry::SessionFeatures features;
      features.tenant_id = requests[i].tenant_id;
      features.monitored_events = tpl.monitored_events;
      features.read_gap_cv = 0.0;
      features.stepped_fraction = 0.0;
      features.slices = requests[i].slices;
      attack_monitor_->ingest(features);
    }
  }
  return results;
}

}  // namespace aegis::service
