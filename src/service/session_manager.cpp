#include "service/session_manager.hpp"

#include "util/rng.hpp"

namespace aegis::service {

namespace {

// Fixed stream indices of the per-tenant seed tree. Adding a stream is
// backward-compatible; reordering is not (it would silently change every
// tenant's trace).
enum SeedStream : std::uint64_t {
  kVmStream = 1,
  kMonitorStream = 2,
  kVisitStream = 3,
  kObfuscatorStream = 4,
};

}  // namespace

ProtectionTemplate make_protection_template(
    const core::Aegis& engine,
    std::shared_ptr<const core::OfflineResult> analysis,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    dp::MechanismConfig mechanism, core::ObfuscatorBuildOptions options,
    std::uint64_t seed, std::size_t monitor_top_events) {
  ProtectionTemplate tpl;
  tpl.engine = &engine;
  tpl.analysis = std::move(analysis);
  // One calibration pass (runs the secret set); its sized config is the
  // template every session reuses with its own seed.
  const auto calibrated = engine.make_obfuscator(*tpl.analysis, secrets,
                                                 mechanism, options, seed);
  tpl.obf_config = calibrated->config();
  tpl.monitored_events = tpl.analysis->top_events(monitor_top_events);
  return tpl;
}

SessionResult run_protected_session(const ProtectionTemplate& tpl,
                                    const SessionRequest& request,
                                    std::size_t granularity) {
  SessionResult result;
  result.tenant_id = request.tenant_id;
  result.granularity = granularity;

  obf::ObfuscatorConfig config = tpl.obf_config;
  config.seed = util::split_mix64(request.seed, kObfuscatorStream);
  obf::EventObfuscator obfuscator(tpl.engine->database(),
                                  tpl.engine->specification(),
                                  tpl.analysis->cover, config);
  const sim::SliceAgent agent =
      obf::coarsen_agent(obfuscator.session(), granularity);

  sim::VirtualMachine vm(tpl.vm, util::split_mix64(request.seed, kVmStream));
  sim::HostMonitor monitor(tpl.engine->database(),
                           util::split_mix64(request.seed, kMonitorStream));
  result.trace = monitor.monitor(
      vm, request.application->visit(util::split_mix64(request.seed, kVisitStream)),
      tpl.monitored_events, request.slices, agent);
  result.injected_repetitions = obfuscator.total_injected_repetitions();
  return result;
}

SessionManager::SessionManager(std::size_t num_threads,
                               BudgetGovernor& governor)
    : pool_(num_threads), governor_(&governor) {}

std::vector<SessionResult> SessionManager::run_fleet(
    const ProtectionTemplate& tpl,
    const std::vector<SessionRequest>& requests) {
  std::vector<SessionResult> results(requests.size());

  // Phase 1 — admission, serial and in submission order: governor state is
  // shared per tenant, so decision order must not depend on scheduling.
  std::vector<std::size_t> granted(requests.size(), 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SessionRequest& request = requests[i];
    const AdmissionDecision decision = governor_->request_window(
        request.tenant_id, request.slices, request.per_slice_epsilon);
    results[i].tenant_id = request.tenant_id;
    results[i].outcome = decision.outcome;
    results[i].granularity = decision.granularity;
    results[i].epsilon_after = decision.epsilon_after;
    if (decision.outcome == Admission::kRefuse) {
      ++refused_;
    } else {
      granted[i] = decision.granularity;
      if (decision.outcome == Admission::kDegrade) ++degraded_;
    }
  }

  // Phase 2 — execution, parallel: each admitted session writes only its
  // own index-keyed slot and derives all randomness from its request seed,
  // so results are bit-identical at every worker count.
  pool_.parallel_for(requests.size(), [&](std::size_t i) {
    if (granted[i] == 0) return;  // refused
    ++started_;
    ++active_;
    const Admission outcome = results[i].outcome;
    const double epsilon_after = results[i].epsilon_after;
    results[i] = run_protected_session(tpl, requests[i], granted[i]);
    results[i].outcome = outcome;
    results[i].epsilon_after = epsilon_after;
    --active_;
    ++completed_;
  });
  return results;
}

}  // namespace aegis::service
