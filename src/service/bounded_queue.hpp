// Bounded MPMC submission queue with blocking backpressure.
//
// The protection service accepts session submissions faster than the
// session pool can drain them only up to `capacity`; past that, push()
// blocks the producer (backpressure) instead of growing an unbounded
// backlog — the paper's host daemon must never let admission outpace the
// obfuscation capacity it actually has. close() wakes every blocked
// producer and consumer: pushes after close are rejected, pops drain the
// remaining items and then report emptiness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aegis::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while the queue is full. Returns false iff the queue was
  /// closed (the item is not enqueued).
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained
  /// (then nullopt).
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Pops up to `limit` items without blocking for more than the first.
  /// Batching lets the dispatcher hand the session pool a whole fleet
  /// instead of one session per wakeup. Empty result = closed and drained.
  std::deque<T> pop_batch(std::size_t limit) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    std::deque<T> batch;
    while (!items_.empty() && batch.size() < limit) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (!batch.empty()) not_full_.notify_all();
    return batch;
  }

  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  // aegis-lint: lock-level(40)
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aegis::service
