// BudgetGovernor: per-tenant privacy-budget admission control.
//
// Each protected monitoring window of T slices at per-slice epsilon eps
// consumes T eps-DP releases (Laplace composes per slice, Theorem 1). A
// tenant carries a lifetime advanced-composition epsilon cap; before a
// session runs, the governor decides:
//   * ADMIT   — the full-granularity window (T releases) fits the cap;
//   * DEGRADE — it does not, but a coarser noise-refresh granularity g in
//     {2, 4, 8, ...} (ceil(T/g) releases) does: the session still runs,
//     with weaker temporal resolution of its DP noise refresh;
//   * REFUSE  — even the coarsest allowed granularity would cross the cap:
//     the session is rejected and the tenant must wait for a new budget
//     grant (reset_tenant) or accept running unprotected out-of-band.
// Admitted/degraded windows are reserved IMMEDIATELY (the accountant
// records the releases at decision time), so concurrent sessions of one
// tenant can never jointly overshoot the cap. Decisions for a given
// request sequence are deterministic: the governor is driven in submission
// order by the SessionManager, never from worker threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "dp/accountant.hpp"
#include "service/service_stats.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace aegis::telemetry {
class Registry;
class BudgetForecaster;
}

namespace aegis::service {

enum class Admission : unsigned char { kAdmit, kDegrade, kRefuse };

const char* to_string(Admission a) noexcept;

struct AdmissionDecision {
  Admission outcome = Admission::kRefuse;
  /// Noise-refresh period in slices (1 = every slice). Meaningful for
  /// kAdmit (always 1) and kDegrade (> 1).
  std::size_t granularity = 1;
  /// DP releases this grant consumes (= ceil(slices / granularity)).
  std::size_t releases = 0;
  /// Tenant's advanced-composition epsilon after the grant is recorded.
  double epsilon_after = 0.0;
};

struct GovernorConfig {
  double default_epsilon_cap = 8.0;  // lifetime advanced-composition cap
  double delta = 1e-6;               // advanced-composition slack
  std::size_t max_granularity = 64;  // coarsest degrade step offered
  /// Sink for the epsilon-spend timeline and per-tenant gauges (null =
  /// telemetry::Registry::global()). TenantBudgetStats stays computed from
  /// the governor's own accountants either way.
  telemetry::Registry* telemetry = nullptr;
  /// Online ε-exhaustion forecaster (telemetry/anomaly.hpp). When set, the
  /// governor feeds it every decision AND consults it for PROACTIVE
  /// degradation: a tenant whose forecast exhaustion ETA falls inside
  /// `proactive_horizon_ns` starts the granularity ladder at 2 instead of
  /// 1, spreading the remaining budget over more windows before the
  /// accountant would force a harsher degrade (ROADMAP item 5). Null, or a
  /// zero horizon, leaves admission byte-for-byte unchanged.
  telemetry::BudgetForecaster* forecaster = nullptr;
  std::uint64_t proactive_horizon_ns = 0;
  /// Dump the armed flight recorder when a tenant is REFUSED (a budget
  /// gate breach is exactly the "what led up to this" moment the recorder
  /// exists for). No-op when no recorder is armed.
  bool dump_on_refuse = false;
};

class BudgetGovernor {
 public:
  explicit BudgetGovernor(GovernorConfig config = {});

  /// Overrides the epsilon cap for one tenant (before or between windows).
  void set_tenant_cap(std::uint64_t tenant_id, double epsilon_cap);

  /// Decides and (for admit/degrade) immediately reserves a monitoring
  /// window of `slices` slices at `per_slice_epsilon`. Thread-safe, but
  /// decision sequences are only deterministic if calls for a tenant set
  /// arrive in a deterministic order.
  AdmissionDecision request_window(std::uint64_t tenant_id, std::size_t slices,
                                   double per_slice_epsilon);

  /// Remaining advanced-composition budget for the tenant.
  double remaining(std::uint64_t tenant_id) const;

  /// Forgets a tenant's spend (a new budget grant / key rotation).
  void reset_tenant(std::uint64_t tenant_id);

  TenantBudgetStats usage(std::uint64_t tenant_id) const;
  std::vector<TenantBudgetStats> all_usage() const;  // sorted by tenant id

  const GovernorConfig& config() const noexcept { return config_; }

 private:
  struct Tenant {
    dp::PrivacyAccountant accountant;
    double epsilon_cap = 0.0;
    std::size_t admitted = 0;
    std::size_t degraded = 0;
    std::size_t refused = 0;
    // Labeled gauges registered when the tenant first appears; decisions
    // then only touch lock-free handles (plus the timeline append).
    telemetry::Gauge epsilon_gauge;
    telemetry::Gauge remaining_gauge;
  };

  /// Looks up or creates the tenant, registering its gauges on creation.
  /// Caller holds mu_.
  Tenant& tenant_for(std::uint64_t tenant_id);

  /// Appends the decision to the ε timeline and refreshes the tenant's
  /// gauges. Caller holds mu_.
  void record_decision(std::uint64_t tenant_id, const Tenant& tenant,
                       const AdmissionDecision& decision);

  TenantBudgetStats snapshot(std::uint64_t id, const Tenant& t) const;

  GovernorConfig config_;
  telemetry::Registry* telemetry_;  // resolved (never null)
  /// Admission wide events, resolved once (wait-free record path).
  telemetry::EventHandle decision_event_;
  telemetry::Counter proactive_degrades_;
  // aegis-lint: lock-level(15, noblock)
  mutable std::mutex mu_;
  std::map<std::uint64_t, Tenant> tenants_;  // ordered for stable snapshots
};

}  // namespace aegis::service
