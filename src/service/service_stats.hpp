// Observability snapshot for the Aegis protection service.
//
// Since the telemetry subsystem landed, these structs are DERIVED VIEWS:
// the cache/session/service counters live in a telemetry::MetricsRegistry
// (per-instance by default, shared when one is injected via the configs)
// and stats() assembles this plain value from the handles. The API is
// unchanged so callers can keep diffing snapshots across time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aegis::service {

/// TemplateCache counters. Invariants (every counter is exact, not sampled):
///   * `lookups == hits + misses`;
///   * `warm_starts` counts misses resolved AGAINST the on-disk store (a
///     persisted file existed and a load was attempted);
///   * `failed_loads` counts those attempts that failed to deserialize
///     (stale/corrupt file) and fell back to a fresh analysis;
///   * `analyses_run` counts offline-pipeline invocations, including ones
///     that threw (the entry is evicted, but the pipeline did run).
/// Hence every single-flight leader either loads successfully or analyzes:
///   `analyses_run == misses - warm_starts + failed_loads`  (exactly).
struct TemplateCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;         // served from memory (incl. in-flight joins)
  std::size_t misses = 0;       // this caller became the single-flight leader
  std::size_t warm_starts = 0;  // leader found a persisted file and loaded it
  std::size_t failed_loads = 0; // ...but the load failed; analysis fallback
  std::size_t analyses_run = 0; // leader ran the offline pipeline

  double hit_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Per-tenant privacy-budget view (BudgetGovernor).
struct TenantBudgetStats {
  std::uint64_t tenant_id = 0;
  std::size_t releases = 0;        // DP releases consumed so far
  double basic_epsilon = 0.0;      // sequential-composition spend
  double advanced_epsilon = 0.0;   // advanced-composition spend
  double epsilon_cap = 0.0;
  std::size_t admitted = 0;        // windows granted at full granularity
  std::size_t degraded = 0;        // windows granted at coarser granularity
  std::size_t refused = 0;         // windows rejected (budget exhausted)
};

struct ServiceStats {
  std::size_t sessions_submitted = 0;
  std::size_t sessions_started = 0;    // dispatched onto the session pool
  std::size_t sessions_active = 0;     // currently executing
  std::size_t sessions_completed = 0;  // ran to the end of their window
  std::size_t sessions_refused = 0;    // rejected by admission control
  std::size_t sessions_degraded = 0;   // ran at coarser granularity
  std::size_t queue_depth = 0;         // submissions awaiting dispatch
  TemplateCacheStats cache;
  std::vector<TenantBudgetStats> tenants;  // sorted by tenant_id
};

}  // namespace aegis::service
