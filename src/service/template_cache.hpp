// TemplateCache: memoized offline analyses for the protection service.
//
// The paper's deployment model (Fig. 2) makes the offline stage a ONE-TIME
// cost on a template server; a fleet-scale service must therefore never
// re-run `core::Aegis::analyze` for a (CPU, workload, config) combination
// it has already analyzed. The cache provides:
//   * memoization keyed on (CPU family, workload fingerprint, OfflineConfig
//     hash) — CPU *family*, not model, because family members share their
//     event lists (Table I) and analyses port across them;
//   * single-flight deduplication — when M tenants cold-start with the same
//     key concurrently, exactly ONE runs the analysis and the other M-1
//     block on the in-flight entry and share its result;
//   * warm-start from disk via core/serialize — an optional cache directory
//     persists every fresh analysis, so a restarted service (or a sibling
//     host) satisfies its first miss with a load instead of a re-analysis.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/serialize.hpp"
#include "service/service_stats.hpp"
#include "telemetry/metrics.hpp"
#include "workload/workload.hpp"

namespace aegis::telemetry {
class Registry;
}

namespace aegis::service {

struct TemplateKey {
  /// PMU backend identifier ("amd-zen2", "intel-xeon-e5"): one backend per
  /// vendor family, so it carries the same porting guarantee the family
  /// check does and names the files something humans can attribute.
  std::string backend_id;
  isa::Vendor vendor = isa::Vendor::kAmd;
  int cpu_family = 0;
  std::uint64_t workload_fingerprint = 0;
  std::uint64_t config_hash = 0;

  bool operator==(const TemplateKey&) const = default;
};

struct TemplateKeyHash {
  std::size_t operator()(const TemplateKey& key) const noexcept;
};

/// Stable fingerprint of a protected application: its secret-set label and
/// monitoring-window length. Two workloads with the same fingerprint share
/// an analysis template.
std::uint64_t fingerprint_workload(const workload::Workload& application);

/// Stable hash of every result-affecting OfflineConfig field. num_threads
/// is deliberately EXCLUDED: campaign results are thread-count-invariant
/// by construction (see DESIGN.md), so the same analysis is valid at any
/// worker count.
std::uint64_t hash_offline_config(const core::OfflineConfig& config);

TemplateKey make_template_key(isa::CpuModel cpu,
                              const workload::Workload& application,
                              const core::OfflineConfig& config);

struct TemplateCacheConfig {
  /// Directory for the serialized templates ("" = memory-only cache). The
  /// directory must already exist; files are named tpl-<backend-id>-
  /// <family>-<workload-fp>-<config-hash>.aegis.
  std::string cache_dir;
  /// Metric sink. Null = the cache creates a PRIVATE registry so stats()
  /// stays per-instance exact; inject one to aggregate across components.
  /// Observational only — never part of hash_offline_config.
  telemetry::Registry* telemetry = nullptr;
};

class TemplateCache {
 public:
  using AnalyzeFn = std::function<core::OfflineResult()>;

  explicit TemplateCache(TemplateCacheConfig config = {});
  ~TemplateCache();

  /// Returns the template for `key`, running `analyze` at most once per
  /// key across all concurrent callers (single-flight). Resolution order
  /// for a miss: disk warm-start (if configured), then `analyze` (whose
  /// result is persisted back to disk, best-effort). If the leader's
  /// analysis throws, every waiter receives the error and the entry is
  /// evicted so a later call can retry.
  std::shared_ptr<const core::OfflineResult> get_or_analyze(
      const TemplateKey& key, const pmu::EventDatabase& db,
      const AnalyzeFn& analyze);

  /// Path the given key persists to ("" when the cache is memory-only).
  std::string disk_path(const TemplateKey& key) const;

  /// Derived view over the registry counters (see TemplateCacheStats docs
  /// for the exact invariants).
  TemplateCacheStats stats() const;

  /// Registry receiving this cache's counters (the injected one, or the
  /// internally owned fallback).
  telemetry::Registry& telemetry() const noexcept { return *telemetry_; }

  /// Cached entries currently resident in memory.
  std::size_t size() const;

 private:
  struct Entry {
    // aegis-lint: lock-level(20)
    std::mutex mu;
    std::condition_variable ready_cv;
    bool ready = false;
    bool failed = false;
    std::string error;
    std::shared_ptr<const core::OfflineResult> result;
  };

  TemplateCacheConfig config_;
  std::unique_ptr<telemetry::Registry> owned_telemetry_;
  telemetry::Registry* telemetry_;
  // Handles resolved once at construction; stats() reads them back.
  telemetry::Counter lookups_;
  telemetry::Counter hits_;
  telemetry::Counter misses_;
  telemetry::Counter warm_starts_;
  telemetry::Counter failed_loads_;
  telemetry::Counter analyses_;
  // aegis-lint: lock-level(10, noblock)
  mutable std::mutex mu_;  // guards entries_
  std::unordered_map<TemplateKey, std::shared_ptr<Entry>, TemplateKeyHash>
      entries_;
};

}  // namespace aegis::service
