#include "service/protection_service.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"

namespace aegis::service {

namespace {

TemplateCacheConfig with_telemetry(TemplateCacheConfig config,
                                   telemetry::Registry* reg) {
  config.telemetry = reg;
  return config;
}

GovernorConfig with_telemetry(GovernorConfig config, telemetry::Registry* reg,
                              telemetry::BudgetForecaster* forecaster) {
  config.telemetry = reg;
  // The service-owned forecaster is fed every decision unless the caller
  // wired an external one into the governor config themselves.
  if (config.forecaster == nullptr) config.forecaster = forecaster;
  return config;
}

}  // namespace

ProtectionService::ProtectionService(ServiceConfig config)
    : config_(config),
      owned_telemetry_(config.telemetry == nullptr
                           ? std::make_unique<telemetry::Registry>()
                           : nullptr),
      telemetry_(config.telemetry != nullptr ? config.telemetry
                                             : owned_telemetry_.get()),
      forecaster_(config.forecaster, telemetry_),
      attack_monitor_(config.attack_monitor, telemetry_),
      cache_(with_telemetry(config.cache, telemetry_)),
      governor_(with_telemetry(config.governor, telemetry_, &forecaster_)),
      manager_(config.num_threads, governor_, telemetry_),
      queue_(std::max<std::size_t>(1, config.queue_capacity)),
      submitted_(
          telemetry_->metrics().counter("aegis_sessions_submitted_total")),
      queue_depth_(telemetry_->metrics().gauge("aegis_service_queue_depth")) {
  manager_.set_attack_monitor(&attack_monitor_);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

ProtectionService::~ProtectionService() { shutdown(); }

std::size_t ProtectionService::register_template(
    const core::Aegis& engine, const workload::Workload& application,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const core::OfflineConfig& offline, dp::MechanismConfig mechanism,
    core::ObfuscatorBuildOptions options, std::uint64_t seed) {
  const TemplateKey key = make_template_key(engine.cpu(), application, offline);
  telemetry::ScopedSpan span(telemetry_->spans(), "service.register_template",
                             "service", 0, key.workload_fingerprint);
  // Always consult the cache so its lookup/hit/single-flight accounting
  // reflects every tenant registration, not just the first.
  auto analysis = cache_.get_or_analyze(key, engine.database(), [&] {
    return engine.analyze(application, secrets, offline);
  });

  // First engine to register decides the vendor attack-event set unless the
  // config pinned one explicitly.
  if (attack_monitor_.attack_events().empty()) {
    attack_monitor_.set_attack_events(engine.backend().attack_events());
  }

  std::lock_guard lock(mu_);
  const auto it = template_ids_.find(key);
  if (it != template_ids_.end()) return it->second;
  // First registration of this key on this service instance: run the one
  // shared calibration pass. Holding mu_ makes concurrent same-key
  // registrations single-flight here too (later ones find the id above).
  // aegis-lint: lock-ok(phantom edge: calibration's HostMonitor submits to the sim VirtualMachine, not to this service; no path back to mu_)
  auto tpl = std::make_unique<ProtectionTemplate>(make_protection_template(
      engine, std::move(analysis), secrets, mechanism, options, seed));
  templates_.push_back(std::move(tpl));
  const std::size_t id = templates_.size() - 1;
  template_ids_.emplace(key, id);
  return id;
}

const ProtectionTemplate& ProtectionService::protection_template(
    std::size_t template_id) const {
  std::lock_guard lock(mu_);
  if (template_id >= templates_.size()) {
    throw std::out_of_range("ProtectionService: unknown template id");
  }
  return *templates_[template_id];
}

void ProtectionService::set_tenant_cap(std::uint64_t tenant_id,
                                       double epsilon_cap) {
  governor_.set_tenant_cap(tenant_id, epsilon_cap);
}

bool ProtectionService::submit(SessionSubmission submission) {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return false;
    if (submission.template_id >= templates_.size()) {
      throw std::out_of_range("ProtectionService: unknown template id");
    }
    ++pending_;
  }
  TimedSubmission timed{std::move(submission),
                        // aegis-lint: clock-ok(reporting-only: latency_seconds)
                        std::chrono::steady_clock::now()};
  if (!queue_.push(std::move(timed))) {
    std::lock_guard lock(mu_);
    --pending_;
    idle_cv_.notify_all();
    return false;
  }
  // Counted only after the push succeeds: monotonic counters cannot be
  // rolled back the way the old mu_-guarded tally could.
  submitted_.inc();
  queue_depth_.set(static_cast<double>(queue_.size()));
  return true;
}

void ProtectionService::dispatch_loop() {
  for (;;) {
    auto batch = queue_.pop_batch(std::max<std::size_t>(1, config_.batch_size));
    if (batch.empty()) return;  // closed and drained
    queue_depth_.set(static_cast<double>(queue_.size()));
    telemetry::ScopedSpan batch_span(telemetry_->spans(), "service.dispatch",
                                     "service", 0, batch.size());

    // A batch may mix templates; group contiguously by template id so each
    // fleet call shares one ProtectionTemplate.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const TimedSubmission& a, const TimedSubmission& b) {
                       return a.submission.template_id <
                              b.submission.template_id;
                     });
    std::size_t begin = 0;
    while (begin < batch.size()) {
      std::size_t end = begin + 1;
      while (end < batch.size() && batch[end].submission.template_id ==
                                       batch[begin].submission.template_id) {
        ++end;
      }
      const ProtectionTemplate* tpl = nullptr;
      {
        std::lock_guard lock(mu_);
        tpl = templates_[batch[begin].submission.template_id].get();
      }
      std::vector<SessionRequest> requests;
      requests.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        requests.push_back(batch[i].submission.request);
      }
      std::vector<SessionResult> results = manager_.run_fleet(*tpl, requests);
      // aegis-lint: clock-ok(reporting-only: per-session latency_seconds)
      const auto now = std::chrono::steady_clock::now();
      {
        std::lock_guard lock(mu_);
        for (std::size_t i = 0; i < results.size(); ++i) {
          CompletedSession done;
          done.result = std::move(results[i]);
          done.latency_seconds =
              std::chrono::duration<double>(now - batch[begin + i].enqueued)
                  .count();
          completed_.push_back(std::move(done));
        }
        pending_ -= end - begin;
      }
      idle_cv_.notify_all();
      begin = end;
    }
  }
}

void ProtectionService::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ProtectionService::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (!config_.shutdown_dump_path.empty()) {
    // Post-drain flight-recorder snapshot: every worker has finished, so
    // the merged dump holds the complete, deterministic event history of
    // this service's registry.
    std::ofstream out(config_.shutdown_dump_path, std::ios::binary);
    if (out) telemetry_->recorder().write_dump(out);
  }
}

ServiceStats ProtectionService::stats() const {
  // Derived view: every field reads back from the telemetry registry (via
  // the component accessors) or live structures; nothing is double-counted.
  ServiceStats stats;
  stats.cache = cache_.stats();
  stats.tenants = governor_.all_usage();
  stats.sessions_started = manager_.started();
  stats.sessions_active = manager_.active();
  stats.sessions_completed = manager_.completed();
  stats.sessions_refused = manager_.refused();
  stats.sessions_degraded = manager_.degraded();
  stats.queue_depth = queue_.size();
  stats.sessions_submitted = submitted_.value();
  queue_depth_.set(static_cast<double>(stats.queue_depth));
  return stats;
}

std::vector<CompletedSession> ProtectionService::take_completed() {
  std::lock_guard lock(mu_);
  std::vector<CompletedSession> out = std::move(completed_);
  completed_.clear();
  return out;
}

}  // namespace aegis::service
