#include "service/template_cache.hpp"

#include <fstream>
#include <sstream>

#include "pmu/backend/registry.hpp"
#include "telemetry/registry.hpp"
#include "util/hash.hpp"

namespace aegis::service {

std::size_t TemplateKeyHash::operator()(const TemplateKey& key) const noexcept {
  std::uint64_t h = util::fnv1a(key.backend_id);
  h = util::hash_combine(h, static_cast<std::uint64_t>(key.vendor));
  h = util::hash_combine(h, static_cast<std::uint64_t>(key.cpu_family));
  h = util::hash_combine(h, key.workload_fingerprint);
  h = util::hash_combine(h, key.config_hash);
  return static_cast<std::size_t>(h);
}

std::uint64_t fingerprint_workload(const workload::Workload& application) {
  std::uint64_t h = util::fnv1a(application.name());
  return util::hash_combine(
      h, static_cast<std::uint64_t>(application.trace_slices()));
}

std::uint64_t hash_offline_config(const core::OfflineConfig& config) {
  std::uint64_t h = util::kFnvOffset;
  const auto& p = config.profiler;
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.warmup_slices));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.warmup_repeats));
  h = util::hash_combine(h, p.warmup_rel_change);
  h = util::hash_combine(h, p.warmup_abs_change);
  h = util::hash_combine(h,
                         static_cast<std::uint64_t>(p.ranking_runs_per_secret));
  h = util::hash_combine(h, static_cast<std::uint64_t>(p.feature_windows));
  h = util::hash_combine(h, p.seed);
  h = util::hash_combine(h, p.vm.slice_budget_cycles);
  h = util::hash_combine(h, p.vm.interrupt_rate);
  h = util::hash_combine(h, p.vm.interrupt_cycles);
  h = util::hash_combine(h, p.vm.interrupt_uops);
  h = util::hash_combine(h, p.vm.cost.issue_width);
  h = util::hash_combine(h, p.vm.cost.l1_miss_cycles);
  h = util::hash_combine(h, p.vm.cost.llc_miss_cycles);
  h = util::hash_combine(h, p.vm.cost.branch_miss_cycles);
  h = util::hash_combine(h, p.vm.cost.serialize_cycles);
  h = util::hash_combine(h, p.vm.cost.int_div_extra);
  h = util::hash_combine(h, p.vm.cost.fp_div_extra);
  const auto& f = config.fuzzer;
  h = util::hash_combine(h, static_cast<std::uint64_t>(f.repeats));
  h = util::hash_combine(h, f.lambda1);
  h = util::hash_combine(h, f.lambda2);
  h = util::hash_combine(h, f.delta_threshold);
  h = util::hash_combine(h, static_cast<std::uint64_t>(f.reset_unroll));
  h = util::hash_combine(h, static_cast<std::uint64_t>(f.trigger_unroll));
  h = util::hash_combine(h, static_cast<std::uint64_t>(f.reset_sample));
  h = util::hash_combine(h, static_cast<std::uint64_t>(f.trigger_sample));
  h = util::hash_combine(h, f.reorder_tolerance);
  h = util::hash_combine(h, f.seed);
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.fuzz_top_events));
  // num_threads (profiler + fuzzer) intentionally omitted: results are
  // bit-identical at every worker count, so it must not split the cache.
  return h;
}

TemplateKey make_template_key(isa::CpuModel cpu,
                              const workload::Workload& application,
                              const core::OfflineConfig& config) {
  TemplateKey key;
  key.backend_id = std::string(pmu::backend::backend_id(cpu));
  key.vendor = isa::vendor_of(cpu);
  key.cpu_family = isa::family_of(cpu);
  key.workload_fingerprint = fingerprint_workload(application);
  key.config_hash = hash_offline_config(config);
  return key;
}

TemplateCache::TemplateCache(TemplateCacheConfig config)
    : config_(std::move(config)),
      owned_telemetry_(config_.telemetry == nullptr
                           ? std::make_unique<telemetry::Registry>()
                           : nullptr),
      telemetry_(config_.telemetry != nullptr ? config_.telemetry
                                              : owned_telemetry_.get()),
      lookups_(telemetry_->metrics().counter("aegis_cache_lookups_total")),
      hits_(telemetry_->metrics().counter("aegis_cache_hits_total")),
      misses_(telemetry_->metrics().counter("aegis_cache_misses_total")),
      warm_starts_(
          telemetry_->metrics().counter("aegis_cache_warm_starts_total")),
      failed_loads_(
          telemetry_->metrics().counter("aegis_cache_failed_loads_total")),
      analyses_(telemetry_->metrics().counter("aegis_cache_analyses_total")) {}

TemplateCache::~TemplateCache() = default;

std::string TemplateCache::disk_path(const TemplateKey& key) const {
  if (config_.cache_dir.empty()) return {};
  std::ostringstream name;
  const std::string& backend =
      key.backend_id.empty()
          ? (key.vendor == isa::Vendor::kIntel ? "intel" : "amd")
          : key.backend_id;
  name << config_.cache_dir << "/tpl-" << backend << "-" << key.cpu_family
       << "-" << std::hex << key.workload_fingerprint << "-" << key.config_hash
       << ".aegis";
  return name.str();
}

std::shared_ptr<const core::OfflineResult> TemplateCache::get_or_analyze(
    const TemplateKey& key, const pmu::EventDatabase& db,
    const AnalyzeFn& analyze) {
  std::shared_ptr<Entry> entry;
  bool leader = false;
  lookups_.inc();
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      leader = true;
    } else {
      entry = it->second;
    }
  }
  if (leader) {
    misses_.inc();
  } else {
    hits_.inc();
  }

  if (!leader) {
    // Join the in-flight (or completed) entry.
    std::unique_lock lock(entry->mu);
    entry->ready_cv.wait(lock, [&] { return entry->ready; });
    if (entry->failed) {
      throw std::runtime_error("TemplateCache: analysis failed: " +
                               entry->error);
    }
    return entry->result;
  }

  // Single-flight leader: resolve the miss outside every lock so waiters
  // on OTHER keys are never serialized behind this analysis.
  std::shared_ptr<const core::OfflineResult> result;
  std::string error;
  const std::string path = disk_path(key);
  if (!path.empty()) {
    std::ifstream is(path);
    if (is) {
      // A persisted file exists: this miss resolves against the disk store.
      warm_starts_.inc();
      try {
        result = std::make_shared<const core::OfflineResult>(
            core::load_offline_result(is, db));
      } catch (const std::exception&) {
        result.reset();  // stale/corrupt file: fall through to analysis
        failed_loads_.inc();
      }
    }
  }
  if (!result) {
    // Counted even when analyze() throws: the pipeline ran, the entry just
    // gets evicted below. Keeps `analyses_run == misses - warm_starts +
    // failed_loads` exact in every case.
    analyses_.inc();
    try {
      result = std::make_shared<const core::OfflineResult>(analyze());
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (result && !path.empty()) {
      try {
        core::save_offline_result(path, *result, db);
      } catch (const std::exception&) {
        // Best-effort persistence: a read-only cache dir degrades to
        // memory-only behavior rather than failing the tenant.
      }
    }
  }

  if (!result) {
    // Evict the failed entry so the next caller retries the analysis.
    std::lock_guard lock(mu_);
    entries_.erase(key);
  }
  {
    std::lock_guard lock(entry->mu);
    entry->ready = true;
    entry->failed = !result;
    entry->error = error;
    entry->result = result;
  }
  entry->ready_cv.notify_all();
  if (!result) {
    throw std::runtime_error("TemplateCache: analysis failed: " + error);
  }
  return result;
}

TemplateCacheStats TemplateCache::stats() const {
  TemplateCacheStats s;
  s.lookups = lookups_.value();
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.warm_starts = warm_starts_.value();
  s.failed_loads = failed_loads_.value();
  s.analyses_run = analyses_.value();
  return s;
}

std::size_t TemplateCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace aegis::service
