// SessionManager: concurrent protected guest sessions with fleet-level
// determinism.
//
// One session = one tenant's protected run: its own sim::VirtualMachine,
// sim::HostMonitor and obf::EventObfuscator, driven for `slices`
// monitoring slices under the template's gadget cover. Sessions share
// ONLY immutable state (the Aegis substrate and the cached OfflineResult);
// every stochastic component derives from the tenant's seed via
// util::split_mix64(seed, stream), so a tenant's counter trace is
// bit-identical whether it runs alone (run_protected_session) or inside a
// 64-tenant fleet at any thread count — the same determinism contract the
// parallel campaign engine established (DESIGN.md).
//
// Admission control (BudgetGovernor) is consulted in SUBMISSION ORDER on
// the calling thread before the fleet fans out, because governor decisions
// mutate per-tenant budget state: running them from pool workers would
// make outcomes depend on scheduling.
#pragma once

#include <memory>
#include <vector>

#include "core/aegis.hpp"
#include "service/budget_governor.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace aegis::telemetry {
class Registry;
class AttackProbabilityMonitor;
struct SessionFeatures;
}

namespace aegis::service {

/// Immutable per-template state shared by every session of that template.
struct ProtectionTemplate {
  const core::Aegis* engine = nullptr;  // event database + ISA spec
  std::shared_ptr<const core::OfflineResult> analysis;
  /// Calibrated obfuscator parameters (noise sizing, weighted segment).
  /// The seed field is overridden per session from the tenant seed.
  obf::ObfuscatorConfig obf_config;
  /// Events the host-side monitor records for the session trace (the
  /// paper's attacks watch the top-4 ranked events).
  std::vector<std::uint32_t> monitored_events;
  sim::VmConfig vm;
};

/// Builds the shared template: one make_obfuscator calibration pass whose
/// resulting config is reused (reseeded) by every session.
ProtectionTemplate make_protection_template(
    const core::Aegis& engine,
    std::shared_ptr<const core::OfflineResult> analysis,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    dp::MechanismConfig mechanism, core::ObfuscatorBuildOptions options = {},
    std::uint64_t seed = 0x0B5EULL, std::size_t monitor_top_events = 4);

struct SessionRequest {
  std::uint64_t tenant_id = 0;
  /// Root of the tenant's deterministic seed tree. All session randomness
  /// (VM, monitor, workload visit, obfuscator) derives from it.
  std::uint64_t seed = 1;
  const workload::Workload* application = nullptr;
  std::size_t slices = 0;
  /// Per-slice DP budget the window consumes (the Laplace epsilon of the
  /// template mechanism; 0 for series-level mechanisms like d*).
  double per_slice_epsilon = 0.0;
};

struct SessionResult {
  std::uint64_t tenant_id = 0;
  Admission outcome = Admission::kRefuse;
  std::size_t granularity = 0;  // noise-refresh period actually used
  sim::MonitorResult trace;     // empty for refused sessions
  double injected_repetitions = 0.0;
  double epsilon_after = 0.0;   // tenant advanced epsilon after this window
};

/// Standalone reference run of ONE session at a fixed granularity — the
/// exact computation a fleet session performs, with no fleet state at all.
/// The fleet-determinism tests compare against this. When `telemetry` is
/// non-null, each noise-refresh window (every `granularity`-th slice) is
/// recorded as an "inject.window" span stamped from the session's VIRTUAL
/// clock (slice index), so traces are deterministic and identical at any
/// thread count; results are bit-identical with or without telemetry.
SessionResult run_protected_session(const ProtectionTemplate& tpl,
                                    const SessionRequest& request,
                                    std::size_t granularity = 1,
                                    telemetry::Registry* telemetry = nullptr);

class SessionManager {
 public:
  /// num_threads: session-pool workers (0 = hardware concurrency).
  /// `telemetry` null = a private registry (per-instance counters).
  SessionManager(std::size_t num_threads, BudgetGovernor& governor,
                 telemetry::Registry* telemetry = nullptr);
  ~SessionManager();

  /// Admits (in request order) and runs one fleet batch concurrently.
  /// results[i] corresponds to requests[i]; refused sessions carry an
  /// empty trace and outcome kRefuse.
  std::vector<SessionResult> run_fleet(
      const ProtectionTemplate& tpl,
      const std::vector<SessionRequest>& requests);

  std::size_t started() const noexcept { return started_.value(); }
  std::size_t completed() const noexcept { return completed_.value(); }
  std::size_t refused() const noexcept { return refused_.value(); }
  std::size_t degraded() const noexcept { return degraded_.value(); }
  /// Sessions currently executing on the pool (an instantaneous gauge).
  std::size_t active() const noexcept {
    return static_cast<std::size_t>(active_.value());
  }

  std::size_t num_threads() const noexcept { return pool_.size(); }

  telemetry::Registry& telemetry() const noexcept { return *telemetry_; }

  /// Attaches the online attack-probability monitor. Executed sessions are
  /// then scored serially, in submission order, AFTER the fleet fan-out
  /// completes — scoring reads shared monitor state, so running it from
  /// pool workers would make gauge/alert order depend on scheduling. Null
  /// detaches. Scoring draws no RNG and never touches session results, so
  /// the bit-identity contract is unaffected.
  void set_attack_monitor(telemetry::AttackProbabilityMonitor* monitor) noexcept {
    attack_monitor_ = monitor;
  }

 private:
  util::ThreadPool pool_;
  BudgetGovernor* governor_;
  std::unique_ptr<telemetry::Registry> owned_telemetry_;
  telemetry::Registry* telemetry_;
  // Counters live in the registry; these handles are the only mutable
  // session-manager state (lock-free, shared-safe).
  telemetry::Counter started_;
  telemetry::Counter completed_;
  telemetry::Counter refused_;
  telemetry::Counter degraded_;
  telemetry::Gauge active_;
  /// Per-session RNG-stream checkpoints (kRngCheckpoint wide events): the
  /// request seed plus the derived VM/monitor/obfuscator stream seeds, so a
  /// dump pinpoints exactly which randomness a session consumed. Stamped
  /// with the request index (virtual time) on the worker — wait-free.
  telemetry::EventHandle rng_event_;
  telemetry::AttackProbabilityMonitor* attack_monitor_ = nullptr;
};

}  // namespace aegis::service
