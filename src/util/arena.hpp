// Chunked bump arena with stable addresses.
//
// GadgetRunner's superblock cache hands out pointers into cold-path-built
// compiled blocks that the noalloc measurement loop then dereferences for
// millions of calls. A std::vector would invalidate those pointers on
// growth; per-object unique_ptrs would cost one heap allocation each. The
// arena allocates fixed-size chunks and bump-allocates objects inside
// them: addresses never move, and N objects cost ceil(N/ChunkSize) heap
// allocations, all on the cold build path.
//
// Deliberately minimal: objects are default-constructed, live until the
// arena dies, and are never individually destroyed early. That fits the
// cache-for-process-lifetime usage; it is not a general allocator.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace aegis::util {

template <typename T, std::size_t ChunkSize = 16>
class Arena {
  static_assert(ChunkSize > 0);

 public:
  /// Default-constructs one more T and returns its stable address.
  T* push() {
    if (used_ == ChunkSize || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Chunk>());
      used_ = 0;
    }
    return &chunks_.back()->items[used_++];
  }

  /// Objects ever allocated (they all stay live until clear()/destruction).
  std::size_t size() const noexcept {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * ChunkSize + used_;
  }

  /// Destroys everything. Invalidates all pointers handed out so far.
  void clear() noexcept {
    chunks_.clear();
    used_ = 0;
  }

 private:
  struct Chunk {
    T items[ChunkSize];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t used_ = 0;
};

}  // namespace aegis::util
