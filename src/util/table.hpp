// ASCII table / CSV rendering used by the bench harnesses to print the same
// rows and series the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace aegis::util {

/// Column-aligned ASCII table with a header row. Cells are plain strings;
/// use format helpers below for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("3.142" for fmt_f(x, 3)).
std::string fmt_f(double x, int precision);

/// Percent formatting ("12.34%").
std::string fmt_pct(double fraction, int precision = 2);

/// Integer with thousands separators ("11,464,996").
std::string fmt_group(long long v);

/// Writes rows as CSV (no quoting; values must not contain commas).
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace aegis::util
