// Stable 64-bit hashing for cache keys.
//
// The service layer keys its template cache on (CPU family, workload
// fingerprint, offline-config hash). std::hash gives no cross-run or
// cross-platform stability guarantee, and the hashes name on-disk cache
// files, so the keys are built from FNV-1a 64 — simple, stable, and good
// enough for a cache directory (collisions only cost a spurious template
// reuse across runs of the SAME deployment, and the serialized stream's
// own CPU-family check still rejects cross-family loads).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace aegis::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over raw bytes, continuing from `state` (chainable).
inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t state = kFnvOffset) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

inline std::uint64_t fnv1a(std::string_view text,
                           std::uint64_t state = kFnvOffset) noexcept {
  return fnv1a(text.data(), text.size(), state);
}

/// Chains one 64-bit word into a running hash.
inline std::uint64_t hash_combine(std::uint64_t state,
                                  std::uint64_t value) noexcept {
  return fnv1a(&value, sizeof(value), state);
}

/// Chains a double by bit pattern (exact: two configs hash equal iff the
/// field bits are equal, the same notion of equality determinism needs).
inline std::uint64_t hash_combine(std::uint64_t state, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return hash_combine(state, bits);
}

}  // namespace aegis::util
