#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

namespace aegis::util {

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(std::span<const double> v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(std::span<const double> v) noexcept { return std::sqrt(variance(v)); }

double median(std::span<const double> v) {
  if (v.empty()) return 0.0;
  std::vector<double> tmp(v.begin(), v.end());
  return median_inplace(tmp);
}

double median_inplace(std::span<double> v) noexcept {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hiv = v[mid];
  if (v.size() % 2 == 1) return hiv;
  const double lov = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lov + hiv);
}

double quantile(std::span<const double> v, double q) {
  if (v.empty()) return 0.0;
  std::vector<double> tmp(v.begin(), v.end());
  std::sort(tmp.begin(), tmp.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(tmp.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  if (i + 1 >= tmp.size()) return tmp.back();
  const double frac = pos - static_cast<double>(i);
  return tmp[i] * (1.0 - frac) + tmp[i + 1] * frac;
}

double min_value(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

GaussianFit fit_gaussian(std::span<const double> v) noexcept {
  GaussianFit fit;
  fit.mu = mean(v);
  // ML estimate (n denominator); floored so pdf/cdf stay finite.
  double acc = 0.0;
  for (double x : v) acc += (x - fit.mu) * (x - fit.mu);
  const double var = v.empty() ? 0.0 : acc / static_cast<double>(v.size());
  fit.sigma = std::max(std::sqrt(var), 1e-9);
  return fit;
}

double gaussian_pdf(double x, double mu, double sigma) noexcept {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * std::numbers::pi));
}

double gaussian_cdf(double x, double mu, double sigma) noexcept {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::numbers::sqrt2));
}

double inverse_normal_cdf(double p) noexcept {
  // Peter Acklam's approximation; relative error < 1.15e-9.
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double qq_normal_correlation(std::span<const double> v) {
  if (v.size() < 3) return 0.0;
  std::vector<double> sample(v.begin(), v.end());
  standardize(sample);
  std::sort(sample.begin(), sample.end());
  std::vector<double> theo(sample.size());
  const double n = static_cast<double>(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    // Blom plotting positions.
    theo[i] = inverse_normal_cdf((static_cast<double>(i) + 1.0 - 0.375) / (n + 0.25));
  }
  return pearson(sample, theo);
}

Histogram make_histogram(std::span<const double> v, std::size_t bins) {
  return make_histogram(v, bins, min_value(v), max_value(v));
}

Histogram make_histogram(std::span<const double> v, std::size_t bins, double lo,
                         double hi) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins == 0 ? 1 : bins, 0);
  if (v.empty()) return h;
  const double width = (hi > lo) ? (hi - lo) : 1.0;
  for (double x : v) {
    double f = (x - lo) / width;
    f = std::clamp(f, 0.0, 1.0);
    std::size_t idx = static_cast<std::size_t>(f * static_cast<double>(h.counts.size()));
    if (idx >= h.counts.size()) idx = h.counts.size() - 1;
    ++h.counts[idx];
  }
  return h;
}

void standardize(std::vector<double>& v) noexcept {
  const double m = mean(v);
  const double s = stddev(v);
  if (s <= 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return;
  }
  for (double& x : v) x = (x - m) / s;
}

}  // namespace aegis::util
