// Descriptive statistics, Gaussian utilities and histogram helpers shared by
// the profiler (Gaussian modelling of event values, Q-Q analysis, Fig. 3),
// the fuzzer (median-of-repeats confirmation) and the evaluation benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aegis::util {

double mean(std::span<const double> v) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> v) noexcept;

double stddev(std::span<const double> v) noexcept;

/// Median; copies and partially sorts. Returns 0 for empty input.
double median(std::span<const double> v);

/// median() over a MUTABLE span: partitions in place instead of copying,
/// so hot paths (fuzzer confirmation) can take the median of scratch
/// buffers without allocating. Element order after the call is
/// unspecified.
double median_inplace(std::span<double> v) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Returns 0 for empty input.
double quantile(std::span<const double> v, double q);

double min_value(std::span<const double> v) noexcept;
double max_value(std::span<const double> v) noexcept;

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Parameters of a fitted univariate Gaussian.
struct GaussianFit {
  double mu = 0.0;
  double sigma = 0.0;
};

/// Maximum-likelihood Gaussian fit (sigma floored at a tiny epsilon so the
/// pdf stays usable for degenerate constant samples).
GaussianFit fit_gaussian(std::span<const double> v) noexcept;

/// Gaussian pdf / cdf.
double gaussian_pdf(double x, double mu, double sigma) noexcept;
double gaussian_cdf(double x, double mu, double sigma) noexcept;

/// Inverse standard-normal CDF (Acklam's rational approximation), used to
/// produce theoretical quantiles for Q-Q plots (Fig. 3b).
double inverse_normal_cdf(double p) noexcept;

/// Q-Q plot correlation of the sample against N(0,1) after standardizing.
/// Values near 1 indicate the sample is Gaussian-like (paper Fig. 3b).
double qq_normal_correlation(std::span<const double> v);

/// Fixed-width histogram over [lo, hi] with `bins` buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
};

Histogram make_histogram(std::span<const double> v, std::size_t bins);
Histogram make_histogram(std::span<const double> v, std::size_t bins,
                         double lo, double hi);

/// z-score normalization in place; constant input maps to all zeros.
void standardize(std::vector<double>& v) noexcept;

}  // namespace aegis::util
