#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace aegis::util {

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t split_mix64(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t state = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  return split_mix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = split_mix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation would be overkill here;
  // modulo bias is negligible for the n (<< 2^32) used in this library.
  return next_u64() % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::laplace(double mu, double b) noexcept {
  // Inverse CDF: u ~ U(-1/2, 1/2); x = mu - b * sgn(u) * ln(1 - 2|u|).
  const double u = uniform() - 0.5;
  const double a = 1.0 - 2.0 * std::abs(u);
  const double clipped = a <= 1e-300 ? 1e-300 : a;
  return mu - b * (u < 0 ? -1.0 : 1.0) * std::log(clipped);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  const double x = normal(lambda, std::sqrt(lambda));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

// aegis-rng: stream(rng-fork)
Rng Rng::fork() noexcept { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace aegis::util
