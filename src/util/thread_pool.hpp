// Work-stealing thread pool for deterministic sharded campaigns.
//
// The pool executes index-space jobs: parallel_for(count, body) runs
// body(i) for every i in [0, count) exactly once and blocks until all are
// done. Work starts as one contiguous index range per worker; a worker that
// drains its range steals the upper half of the largest remaining range, so
// uneven shard costs still load-balance.
//
// Determinism contract (see DESIGN.md "Parallel campaign"): the pool
// guarantees NOTHING about execution order or which thread runs which
// index. Callers make results thread-count-invariant by deriving all
// per-shard state (RNG streams, simulator instances) from the shard index
// alone — util::split_mix64(seed, shard) — and writing to disjoint,
// index-keyed output slots that are merged in index order afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace aegis::util {

class ThreadPool {
 public:
  /// 0 = one worker per hardware thread (std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resolves the `0 = hardware_concurrency` convention used by the
  /// num_threads knobs (FuzzerConfig, ProfilerConfig) without building a pool.
  static std::size_t resolve(std::size_t num_threads) noexcept;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for every i in [0, count); blocks until all complete.
  /// The first exception thrown by any body is rethrown on the caller after
  /// the remaining indices have still been executed. Not reentrant: must
  /// not be called from inside a pool task.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  // One per worker: the contiguous [begin, end) index range it still owns.
  // unique_ptr keeps Shard addresses stable (std::mutex is immovable).
  // `epoch` records which parallel_for call seeded the range: a worker that
  // wakes late for a finished epoch must not claim indices that a newer
  // call has already re-seeded (its body pointer would be stale).
  struct Shard {
    // aegis-lint: lock-level(51)
    std::mutex mu;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t epoch = 0;
  };

  void worker_loop(std::size_t self);
  bool claim_index(std::size_t self, std::size_t epoch, std::size_t& index);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  // aegis-lint: lock-level(50)
  std::mutex mu_;                    // guards the job state below
  std::condition_variable work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // the caller waits for completion
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t epoch_ = 0;      // bumped once per parallel_for call
  std::size_t remaining_ = 0;  // indices not yet completed this job
  std::size_t active_ = 0;     // workers still inside this job
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace aegis::util
