#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace aegis::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << r[c];
      os << std::string(width[c] - r[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string fmt_f(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt_f(fraction * 100.0, precision) + "%";
}

std::string fmt_group(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1ULL
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) os << ',';
    os << header[c];
  }
  os << '\n';
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  }
}

}  // namespace aegis::util
