#include "util/thread_pool.hpp"

#include <algorithm>

namespace aegis::util {

std::size_t ThreadPool::resolve(std::size_t num_threads) noexcept {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve(num_threads);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::claim_index(std::size_t self, std::size_t epoch,
                             std::size_t& index) {
  // Only shards seeded for this worker's epoch are claimable: a worker that
  // overslept a finished job must come up empty even if a newer
  // parallel_for has already re-seeded the ranges.
  // Own shard first: consume from the front.
  {
    Shard& own = *shards_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (own.epoch == epoch && own.begin < own.end) {
      index = own.begin++;
      return true;
    }
  }
  // Steal: take the upper half of the largest remaining shard. The scan is
  // racy by design (sizes move while scanning); the re-check under both
  // locks below makes it safe, and a stale pick only costs a rescan.
  while (true) {
    std::size_t victim = size();
    std::size_t victim_left = 0;
    for (std::size_t i = 0; i < size(); ++i) {
      if (i == self) continue;
      Shard& s = *shards_[i];
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.epoch != epoch) continue;
      const std::size_t left = s.end - s.begin;
      if (left > victim_left) {
        victim_left = left;
        victim = i;
      }
    }
    if (victim == size()) return false;  // everything drained
    Shard& v = *shards_[victim];
    Shard& own = *shards_[self];
    std::scoped_lock lock(v.mu, own.mu);
    if (v.epoch != epoch || v.begin >= v.end) continue;  // moved on; rescan
    // Thief takes [mid, end) — at least one index; the victim keeps the
    // lower half and continues consuming from its front undisturbed.
    const std::size_t mid = v.begin + (v.end - v.begin) / 2;
    own.begin = mid;
    own.end = v.end;
    v.end = mid;
    index = own.begin++;
    return true;
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  std::size_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      body = body_;
      ++active_;
    }
    std::size_t done = 0;
    std::size_t index = 0;
    while (body != nullptr && claim_index(self, seen_epoch, index)) {
      try {
        (*body)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      ++done;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      remaining_ -= done;
      --active_;
      if (remaining_ == 0 && active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Seed each worker with an even contiguous slice of the index space,
  // tagged with the epoch this job will run as (only this caller thread
  // writes epoch_, so reading it unlocked here is safe). Workers cannot see
  // the new ranges as claimable until epoch_ is bumped below.
  const std::size_t job_epoch = epoch_ + 1;
  const std::size_t n = size();
  const std::size_t chunk = count / n;
  const std::size_t extra = count % n;
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = chunk + (i < extra ? 1 : 0);
    Shard& s = *shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    s.begin = next;
    s.end = next + len;
    s.epoch = job_epoch;
    next += len;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    remaining_ = count;
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0 && active_ == 0; });
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace aegis::util
