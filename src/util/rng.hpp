// Deterministic pseudo-random number generation for the Aegis simulator.
//
// Every stochastic component in the library (PMU noise, workload jitter,
// DP noise sampling, fuzzing order) draws from an aegis::util::Rng seeded
// explicitly by the caller, so that experiments are reproducible run-to-run
// and results can be compared against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>
#include <algorithm>
#include <cstddef>

namespace aegis::util {

/// SplitMix64 step; used to expand a single 64-bit seed into stream state.
std::uint64_t split_mix64(std::uint64_t& state) noexcept;

/// Derives the seed of an independent child stream: splittable-RNG
/// construction where stream i starts from `seed` offset by (i+1) golden
/// gammas and takes one SplitMix64 output. Used to give every shard of a
/// parallel campaign its own deterministic stream — results depend only on
/// (seed, stream), never on which thread runs the shard. Feed the result to
/// Rng's constructor. Streams are pairwise uncorrelated (see util_test's
/// chi-square coverage).
std::uint64_t split_mix64(std::uint64_t seed, std::uint64_t stream) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, suitable for
/// simulation workloads; not cryptographically secure (not needed here).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second deviate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Laplace(mu, b) via inverse CDF of a single uniform draw. This is the
  /// same uniform->Laplace transform the paper's noise calculator uses to
  /// avoid library-API latency (Section VII-C).
  double laplace(double mu, double b) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  std::uint64_t poisson(double lambda) noexcept;

  /// Derive an independent child generator; used to give each simulated
  /// entity (site, VM, event) its own stream without cross-correlation.
  Rng fork() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty v.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(uniform_index(v.size()))];
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace aegis::util
