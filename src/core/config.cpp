#include "core/config.hpp"

namespace aegis::core {

OfflineConfig make_quick_offline_config(std::uint64_t seed,
                                        std::size_t num_threads) {
  OfflineConfig config;
  config.set_num_threads(num_threads);
  config.profiler.seed = seed;
  config.profiler.warmup_repeats = 3;
  config.profiler.warmup_slices = 80;
  config.profiler.ranking_runs_per_secret = 6;
  config.fuzzer.seed = seed ^ 0xF022ULL;
  config.fuzzer.reset_sample = 32;
  config.fuzzer.trigger_sample = 32;
  config.fuzzer.repeats = 6;
  config.fuzz_top_events = 24;
  return config;
}

}  // namespace aegis::core
