#include "core/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "pmu/backend/registry.hpp"

namespace aegis::core {

namespace {

// Header line: "aegis-offline-result v<N>". The version is parsed, not
// string-compared: streams written by an OLDER build (version <=
// kFormatVersion) load normally, while a stream from a NEWER build is
// rejected with an actionable error instead of a confusing parse failure
// deeper in the file. Bump kFormatVersion whenever the section layout
// changes incompatibly.
// v1: cpu line only. v2: adds a "backend <id>" line after the cpu line so a
// result templated on one PMU backend cannot be silently replayed on
// another; v1 streams still load (the backend is implied by the cpu line).
constexpr const char* kMagicPrefix = "aegis-offline-result v";
constexpr unsigned kFormatVersion = 2;

std::string event_name(const pmu::EventDatabase& db, std::uint32_t id) {
  return db.by_id(id).name;
}

std::uint32_t event_id_or_throw(const pmu::EventDatabase& db,
                                const std::string& name) {
  const auto id = db.find(name);
  if (!id) {
    throw std::runtime_error("load_offline_result: unknown event '" + name + "'");
  }
  return *id;
}

/// Reads one non-empty line; throws at EOF.
std::string read_line(std::istream& is, const char* context) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) return line;
  }
  throw std::runtime_error(std::string("load_offline_result: truncated input at ") +
                           context);
}

void expect_section(std::istream& is, const std::string& name) {
  const std::string line = read_line(is, name.c_str());
  if (line != "[" + name + "]") {
    throw std::runtime_error("load_offline_result: expected section [" + name +
                             "], got '" + line + "'");
  }
}

}  // namespace

void save_offline_result(std::ostream& os, const OfflineResult& result,
                         const pmu::EventDatabase& db) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagicPrefix << kFormatVersion << "\n";
  os << "cpu " << isa::to_string(db.model()) << "\n";
  os << "backend " << pmu::backend::backend_id(db.model()) << "\n";

  os << "[warmup]\n" << result.warmup.surviving.size() << "\n";
  for (std::uint32_t id : result.warmup.surviving) {
    os << event_name(db, id) << "\n";
  }

  os << "[ranking]\n" << result.ranking.size() << "\n";
  for (const auto& rank : result.ranking) {
    os << rank.mutual_information << "\t" << event_name(db, rank.event_id) << "\n";
  }

  // Per-event confirmed gadgets (uids are stable: the ISA spec is
  // deterministic per CPU family).
  os << "[gadgets]\n" << result.fuzz.reports.size() << "\n";
  for (const auto& report : result.fuzz.reports) {
    os << event_name(db, report.event_id) << "\t" << report.confirmed.size()
       << "\t" << report.best.gadget.reset_uid << "\t"
       << report.best.gadget.trigger_uid << "\t" << report.best.median_delta
       << "\n";
    for (const auto& g : report.confirmed) {
      os << g.gadget.reset_uid << "\t" << g.gadget.trigger_uid << "\t"
         << g.median_delta << "\n";
    }
  }

  os << "[cover]\n" << result.cover.gadgets.size() << "\n";
  for (const auto& g : result.cover.gadgets) {
    os << g.reset_uid << "\t" << g.trigger_uid << "\n";
  }
  os << result.cover.segment_effect.size() << "\n";
  for (const auto& [event, delta] : result.cover.segment_effect) {
    os << delta << "\t" << event_name(db, event) << "\n";
  }
  os << result.cover.uncovered_events.size() << "\n";
  for (std::uint32_t id : result.cover.uncovered_events) {
    os << event_name(db, id) << "\n";
  }
}

OfflineResult load_offline_result(std::istream& is,
                                  const pmu::EventDatabase& db) {
  OfflineResult result;
  unsigned version = 0;
  {
    const std::string magic = read_line(is, "magic");
    const std::string prefix(kMagicPrefix);
    if (magic.rfind(prefix, 0) != 0) {
      throw std::runtime_error("load_offline_result: bad magic line");
    }
    try {
      std::size_t consumed = 0;
      const std::string suffix = magic.substr(prefix.size());
      version = static_cast<unsigned>(std::stoul(suffix, &consumed));
      if (consumed != suffix.size()) {
        throw std::invalid_argument("trailing junk");
      }
    } catch (const std::exception&) {
      throw std::runtime_error("load_offline_result: bad format version in '" +
                               magic + "'");
    }
    if (version == 0 || version > kFormatVersion) {
      throw std::runtime_error(
          "load_offline_result: stream format v" + std::to_string(version) +
          " is newer than this build's supported v" +
          std::to_string(kFormatVersion) + "; upgrade aegis to load it");
    }
  }
  {
    const std::string cpu_line = read_line(is, "cpu");
    const std::string expected = "cpu " + std::string(isa::to_string(db.model()));
    // Family members share event lists; accept any same-family model.
    bool ok = cpu_line == expected;
    if (!ok) {
      for (isa::CpuModel m :
           {isa::CpuModel::kIntelXeonE5_1650, isa::CpuModel::kIntelXeonE5_4617,
            isa::CpuModel::kAmdEpyc7252, isa::CpuModel::kAmdEpyc7313P}) {
        if (cpu_line == "cpu " + std::string(isa::to_string(m)) &&
            isa::family_of(m) == isa::family_of(db.model())) {
          ok = true;
        }
      }
    }
    if (!ok) {
      throw std::runtime_error("load_offline_result: CPU family mismatch: " +
                               cpu_line);
    }
  }
  if (version >= 2) {
    // Belt-and-braces next to the family check: the backend id names the
    // vendor family a template was analyzed on, and a template only ever
    // loads back into the same family's backend.
    const std::string backend_line = read_line(is, "backend");
    const std::string expected =
        "backend " + std::string(pmu::backend::backend_id(db.model()));
    if (backend_line != expected) {
      throw std::runtime_error("load_offline_result: PMU backend mismatch: '" +
                               backend_line + "' (expected '" + expected +
                               "')");
    }
  }

  expect_section(is, "warmup");
  {
    const std::size_t n = std::stoul(read_line(is, "warmup count"));
    result.warmup.total_events = db.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t id =
          event_id_or_throw(db, read_line(is, "warmup event"));
      result.warmup.surviving.push_back(id);
      ++result.warmup.after_by_type[static_cast<std::size_t>(db.by_id(id).type)];
    }
    result.warmup.before_by_type = db.count_by_type();
  }

  expect_section(is, "ranking");
  {
    const std::size_t n = std::stoul(read_line(is, "ranking count"));
    for (std::size_t i = 0; i < n; ++i) {
      std::istringstream line(read_line(is, "ranking row"));
      profiler::EventRank rank;
      std::string name;
      line >> rank.mutual_information;
      std::getline(line >> std::ws, name);
      rank.event_id = event_id_or_throw(db, name);
      result.ranking.push_back(rank);
    }
  }

  expect_section(is, "gadgets");
  {
    const std::size_t n = std::stoul(read_line(is, "gadget report count"));
    for (std::size_t i = 0; i < n; ++i) {
      std::istringstream header(read_line(is, "gadget report header"));
      std::string rest;
      // event-name may contain ':' but not tabs; parse by tabs.
      std::getline(header, rest);
      std::vector<std::string> fields;
      std::stringstream ss(rest);
      std::string field;
      while (std::getline(ss, field, '\t')) fields.push_back(field);
      if (fields.size() != 5) {
        throw std::runtime_error("load_offline_result: bad gadget header");
      }
      fuzzer::EventFuzzReport report;
      report.event_id = event_id_or_throw(db, fields[0]);
      const std::size_t gadget_count = std::stoul(fields[1]);
      report.best.gadget.reset_uid = static_cast<std::uint32_t>(std::stoul(fields[2]));
      report.best.gadget.trigger_uid = static_cast<std::uint32_t>(std::stoul(fields[3]));
      report.best.median_delta = std::stod(fields[4]);
      report.best.event_id = report.event_id;
      for (std::size_t g = 0; g < gadget_count; ++g) {
        std::istringstream row(read_line(is, "gadget row"));
        fuzzer::ConfirmedGadget confirmed;
        row >> confirmed.gadget.reset_uid >> confirmed.gadget.trigger_uid >>
            confirmed.median_delta;
        confirmed.event_id = report.event_id;
        report.confirmed.push_back(confirmed);
      }
      report.candidates = report.confirmed.size();
      result.fuzz.reports.push_back(std::move(report));
    }
  }

  expect_section(is, "cover");
  {
    const std::size_t gadgets = std::stoul(read_line(is, "cover gadget count"));
    for (std::size_t i = 0; i < gadgets; ++i) {
      std::istringstream row(read_line(is, "cover gadget"));
      fuzzer::Gadget g;
      row >> g.reset_uid >> g.trigger_uid;
      result.cover.gadgets.push_back(g);
    }
    const std::size_t effects = std::stoul(read_line(is, "cover effect count"));
    for (std::size_t i = 0; i < effects; ++i) {
      std::istringstream row(read_line(is, "cover effect"));
      double delta = 0.0;
      std::string name;
      row >> delta;
      std::getline(row >> std::ws, name);
      const std::uint32_t id = event_id_or_throw(db, name);
      result.cover.segment_effect.emplace_back(id, delta);
      result.cover.covered_events.push_back(id);
    }
    const std::size_t uncovered = std::stoul(read_line(is, "uncovered count"));
    for (std::size_t i = 0; i < uncovered; ++i) {
      result.cover.uncovered_events.push_back(
          event_id_or_throw(db, read_line(is, "uncovered event")));
    }
  }
  return result;
}

void save_offline_result(const std::string& path, const OfflineResult& result,
                         const pmu::EventDatabase& db) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_offline_result: cannot open " + path);
  save_offline_result(os, result, db);
}

OfflineResult load_offline_result(const std::string& path,
                                  const pmu::EventDatabase& db) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_offline_result: cannot open " + path);
  return load_offline_result(is, db);
}

}  // namespace aegis::core
