// Top-level configuration for the Aegis pipeline.
#pragma once

#include "fuzzer/fuzzer.hpp"
#include "obf/obfuscator.hpp"
#include "profiler/profiler.hpp"

namespace aegis::core {

struct OfflineConfig {
  profiler::ProfilerConfig profiler;
  fuzzer::FuzzerConfig fuzzer;
  /// Fuzz only the top-N ranked events (0 = every warm-up survivor). The
  /// paper fuzzes every survivor; N lets scaled-down runs stay fast.
  std::size_t fuzz_top_events = 0;

  /// Sets the campaign worker count of every stage (profiler warm-up and
  /// ranking, fuzzer generation and confirmation). 0 = hardware
  /// concurrency. Results are thread-count-invariant by construction.
  void set_num_threads(std::size_t n) {
    profiler.num_threads = n;
    fuzzer.num_threads = n;
  }

  /// Points every offline stage at one telemetry registry (null = the
  /// process-wide global). Observational only; config hashes ignore it.
  void set_telemetry(telemetry::Registry* reg) {
    profiler.telemetry = reg;
    fuzzer.telemetry = reg;
  }
};

/// Scales a default OfflineConfig for quick runs (tests, examples).
/// `num_threads` is applied to every pipeline stage (0 = hardware
/// concurrency).
OfflineConfig make_quick_offline_config(std::uint64_t seed = 11,
                                        std::size_t num_threads = 0);

}  // namespace aegis::core
