// Top-level configuration for the Aegis pipeline.
#pragma once

#include "fuzzer/fuzzer.hpp"
#include "obf/obfuscator.hpp"
#include "profiler/profiler.hpp"

namespace aegis::core {

struct OfflineConfig {
  profiler::ProfilerConfig profiler;
  fuzzer::FuzzerConfig fuzzer;
  /// Fuzz only the top-N ranked events (0 = every warm-up survivor). The
  /// paper fuzzes every survivor; N lets scaled-down runs stay fast.
  std::size_t fuzz_top_events = 0;
};

/// Scales a default OfflineConfig for quick runs (tests, examples).
OfflineConfig make_quick_offline_config(std::uint64_t seed = 11);

}  // namespace aegis::core
