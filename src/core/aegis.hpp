// Aegis facade: the library's top-level entry point (paper Fig. 2).
//
// Offline (template server, one-time):
//   analyze(application, secrets) = Application Profiler (warm-up + Eq. 1
//   ranking) -> Event Fuzzer (gadget discovery per vulnerable event) ->
//   minimal gadget cover.
// Online (victim VM, per protected run):
//   make_obfuscator(result, mechanism) builds an Event Obfuscator whose
//   session() agents inject DP-calibrated gadget noise.
//
// See examples/quickstart.cpp for the end-to-end flow.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "fuzzer/set_cover.hpp"
#include "isa/spec.hpp"
#include "obf/rotating_plan.hpp"
#include "pmu/backend/backend.hpp"

namespace aegis::core {

/// Options for sizing the injected noise (see obf/obfuscator.hpp).
struct ObfuscatorBuildOptions {
  std::size_t protect_top_events = 0;   // 0 = every covered event
  double clip_sigma = 30.0;             // B_u in sigma units
  std::size_t calibration_runs = 2;     // runs per secret for calibration
  /// Ablation: one noise stream for the whole segment (see
  /// obf::ObfuscatorConfig::single_stream). Default: per-gadget streams.
  bool single_noise_stream = false;
  /// Extra multiplier on the per-slice noise amplitude. 1.0 sizes noise to
  /// the calibrated per-slice leakage spread; attack models pool several
  /// consecutive slices per feature, attenuating i.i.d. noise by the square
  /// root of the pooling window, so the default partially compensates.
  /// Raising it strengthens privacy at proportional overhead cost.
  double pooling_factor = 2.0;
  /// Dynamic defense: rotate the injected plan over a deterministic
  /// schedule (Obelix-style; see obf/rotating_plan.hpp). ε-neutral.
  bool rotate = false;
  obf::RotatingPlanConfig rotation;
};

struct OfflineResult {
  profiler::WarmupReport warmup;
  std::vector<profiler::EventRank> ranking;   // sorted by MI, descending
  fuzzer::FuzzResult fuzz;
  fuzzer::GadgetCover cover;

  /// The top-n ranked vulnerable events (the paper monitors the top 4).
  std::vector<std::uint32_t> top_events(std::size_t n) const;
};

class Aegis {
 public:
  /// Binds the per-CPU substrate (PMU backend + ISA specification) for the
  /// template server's processor model. The backend comes from
  /// pmu::backend::BackendRegistry, so every Aegis on the same model shares
  /// one immutable event database.
  explicit Aegis(isa::CpuModel template_cpu);

  /// Offline pipeline: profile -> rank -> fuzz -> cover. Pure function of
  /// (substrate, inputs): safe to call concurrently from service threads.
  OfflineResult analyze(
      const workload::Workload& application,
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      const OfflineConfig& config) const;

  /// Online defense: an obfuscator bound to the analyzed gadget cover.
  /// `mechanism` picks Laplace / d* / baseline and the privacy budget; the
  /// per-event noise units are calibrated by running the secret set.
  std::unique_ptr<obf::EventObfuscator> make_obfuscator(
      const OfflineResult& analysis,
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      dp::MechanismConfig mechanism, ObfuscatorBuildOptions options = {},
      std::uint64_t seed = 0x0B5EULL) const;

  const pmu::backend::PmuBackend& backend() const noexcept { return *backend_; }
  const pmu::EventDatabase& database() const noexcept {
    return backend_->database();
  }
  const isa::IsaSpecification& specification() const noexcept { return spec_; }
  isa::CpuModel cpu() const noexcept { return backend_->model(); }

 private:
  const pmu::backend::PmuBackend* backend_;  // registry singleton, never null
  isa::IsaSpecification spec_;
};

}  // namespace aegis::core
