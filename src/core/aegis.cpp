#include "core/aegis.hpp"

#include "pmu/backend/registry.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <unordered_map>

namespace aegis::core {

std::vector<std::uint32_t> OfflineResult::top_events(std::size_t n) const {
  std::vector<std::uint32_t> events;
  events.reserve(std::min(n, ranking.size()));
  for (const auto& rank : ranking) {
    if (events.size() >= n) break;
    events.push_back(rank.event_id);
  }
  return events;
}

Aegis::Aegis(isa::CpuModel template_cpu)
    : backend_(&pmu::backend::backend_for(template_cpu)),
      spec_(isa::IsaSpecification::generate(template_cpu)) {}

OfflineResult Aegis::analyze(
    const workload::Workload& application,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const OfflineConfig& config) const {
  OfflineResult result;

  profiler::ApplicationProfiler prof(database(), config.profiler);
  result.warmup = prof.warmup(application);
  result.ranking = prof.rank(secrets, result.warmup.surviving);

  std::vector<std::uint32_t> to_fuzz;
  const std::size_t limit = config.fuzz_top_events == 0
                                ? result.ranking.size()
                                : std::min(config.fuzz_top_events,
                                           result.ranking.size());
  to_fuzz.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    to_fuzz.push_back(result.ranking[i].event_id);
  }

  fuzzer::EventFuzzer fuzz(database(), spec_, config.fuzzer);
  result.fuzz = fuzz.run(to_fuzz);
  result.cover = fuzzer::minimal_gadget_cover(result.fuzz);
  return result;
}

std::unique_ptr<obf::EventObfuscator> Aegis::make_obfuscator(
    const OfflineResult& analysis,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    dp::MechanismConfig mechanism, ObfuscatorBuildOptions options,
    std::uint64_t seed) const {
  // The protected events: the top-MI events the cover actually reaches,
  // in ranking order (the attacker monitors the top-ranked ones).
  const std::size_t protect_limit = options.protect_top_events == 0
                                        ? analysis.cover.covered_events.size()
                                        : options.protect_top_events;
  std::vector<std::uint32_t> protected_events;
  for (const auto& rank : analysis.ranking) {
    if (protected_events.size() >= protect_limit) break;
    if (std::find(analysis.cover.covered_events.begin(),
                  analysis.cover.covered_events.end(),
                  rank.event_id) != analysis.cover.covered_events.end()) {
      protected_events.push_back(rank.event_id);
    }
  }
  if (protected_events.empty()) {
    protected_events = analysis.cover.covered_events;
  }

  const std::vector<obf::EventCalibration> calibration =
      obf::calibrate_events(database(), protected_events, secrets,
                            options.calibration_runs, seed ^ 0xCA1ULL);

  // Per-event requirement: r_e = sigma_e / delta_e segment repetitions per
  // 1.0 units of normalized noise. One repetition knob drives every event;
  // sizing it to the worst r_e would let a single weak-delta event inflate
  // the noise for all (the requirement spread is an order of magnitude).
  // Instead the knob is sized to the MEDIAN requirement, and events above
  // it get their own highest-value-change gadget (Section VI-F) stacked
  // into the segment with a boosted multiplicity, so every protected event
  // still receives at least its full mechanism noise.
  // Per-gadget per-event measured deltas, from the fuzzing reports.
  std::unordered_map<fuzzer::Gadget,
                     std::unordered_map<std::uint32_t, double>,
                     fuzzer::GadgetHash>
      gadget_effect;
  for (const auto& report : analysis.fuzz.reports) {
    for (const auto& g : report.confirmed) {
      auto& per_event = gadget_effect[g.gadget][report.event_id];
      per_event = std::max(per_event, g.median_delta);
    }
  }

  std::vector<obf::WeightedGadget> segment;
  for (const fuzzer::Gadget& g : analysis.cover.gadgets) {
    segment.push_back(obf::WeightedGadget{g, 1.0});
  }
  auto effective_delta = [&](std::uint32_t event_id) {
    double delta = 0.0;
    for (const auto& wg : segment) {
      const auto it = gadget_effect.find(wg.gadget);
      if (it == gadget_effect.end()) continue;
      const auto jt = it->second.find(event_id);
      if (jt != it->second.end()) delta += wg.weight * jt->second;
    }
    return delta;
  };
  auto median_requirement = [&] {
    std::vector<double> requirements;
    for (const obf::EventCalibration& cal : calibration) {
      const double delta = effective_delta(cal.event_id);
      if (delta > 1e-9 && cal.stddev > 0.0) {
        requirements.push_back(cal.stddev / delta);
      }
    }
    return util::median(requirements);
  };

  // The knob is sized to the median requirement of the unit-weight
  // segment; events whose requirement exceeds it get their strongest
  // gadget's multiplicity raised until their effective delta reaches
  // sigma_e / unit. Boost side effects raise other events' deltas too
  // (only strengthening their noise), so the loop converges in a few
  // passes; afterwards EVERY protected event receives at least its full
  // mechanism noise at the median cost.
  const double unit = std::max(median_requirement(), 1.0);
  auto add_weight = [&](const fuzzer::Gadget& g, double extra) {
    for (auto& wg : segment) {
      if (wg.gadget == g) {
        wg.weight += extra;
        return;
      }
    }
    segment.push_back(obf::WeightedGadget{g, 1.0 + extra});
  };
  for (int pass = 0; pass < 4; ++pass) {
    bool boosted = false;
    for (const obf::EventCalibration& cal : calibration) {
      if (cal.stddev <= 0.0) continue;
      const double target_delta = cal.stddev / unit;
      const double delta = effective_delta(cal.event_id);
      if (delta >= target_delta * 0.99) continue;
      for (const auto& report : analysis.fuzz.reports) {
        if (report.event_id != cal.event_id || report.confirmed.empty()) continue;
        const double extra = std::min(
            (target_delta - delta) / std::max(report.best.median_delta, 1e-9),
            50.0);
        if (extra > 1e-3) {
          add_weight(report.best.gadget, extra);
          boosted = true;
        }
        break;
      }
    }
    if (!boosted) break;
  }
  const double unit_reps = std::max(unit * options.pooling_factor, 1.0);

  obf::ObfuscatorConfig config;
  config.mechanism = mechanism;
  config.reference_event = protected_events.front();
  config.reference_sigma = std::max(calibration.front().stddev, 1.0);
  config.unit_reps = unit_reps;
  config.clip_norm = options.clip_sigma;
  config.weighted_segment = std::move(segment);
  config.single_stream = options.single_noise_stream;
  config.rotate = options.rotate;
  config.rotation = options.rotation;
  config.seed = seed;
  return std::make_unique<obf::EventObfuscator>(database(), spec_,
                                                analysis.cover, config);
}

}  // namespace aegis::core
