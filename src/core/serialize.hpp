// Persistence for the offline analysis (paper Fig. 2: "the two modules in
// the offline stage are only performed one time, and the analyzed results
// would be applied in the online stage").
//
// The offline stage runs on a template server; the victim VM only needs
// its *result* — the vulnerable-event ranking, the confirmed gadgets and
// the cover. save/load use a line-oriented text format (one section per
// component) so the analysis can be shipped into the guest, versioned and
// diffed. The header line carries an explicit format version
// ("aegis-offline-result v<N>"): older-version streams load, future
// versions are rejected with a clear upgrade error. Event ids are stored
// by NAME, so a result saved against one family member loads against
// another (Table I: family members share their event lists).
#pragma once

#include <iosfwd>
#include <string>

#include "core/aegis.hpp"

namespace aegis::core {

/// Writes the analysis to a stream. Includes the CPU model for validation.
void save_offline_result(std::ostream& os, const OfflineResult& result,
                         const pmu::EventDatabase& db);

/// Reads an analysis back. Throws std::runtime_error on malformed input,
/// unknown event names, or a CPU family mismatch.
OfflineResult load_offline_result(std::istream& is,
                                  const pmu::EventDatabase& db);

/// File-path convenience wrappers.
void save_offline_result(const std::string& path, const OfflineResult& result,
                         const pmu::EventDatabase& db);
OfflineResult load_offline_result(const std::string& path,
                                  const pmu::EventDatabase& db);

}  // namespace aegis::core
