#include "isa/instruction_class.hpp"

namespace aegis::isa {

std::string_view to_string(InstructionClass c) noexcept {
  switch (c) {
    case InstructionClass::kNop: return "nop";
    case InstructionClass::kIntAlu: return "int_alu";
    case InstructionClass::kIntMul: return "int_mul";
    case InstructionClass::kIntDiv: return "int_div";
    case InstructionClass::kLogic: return "logic";
    case InstructionClass::kBitManip: return "bit_manip";
    case InstructionClass::kMov: return "mov";
    case InstructionClass::kLoad: return "load";
    case InstructionClass::kStore: return "store";
    case InstructionClass::kPush: return "push";
    case InstructionClass::kBranch: return "branch";
    case InstructionClass::kCall: return "call";
    case InstructionClass::kFpAdd: return "fp_add";
    case InstructionClass::kFpMul: return "fp_mul";
    case InstructionClass::kFpDiv: return "fp_div";
    case InstructionClass::kSimdInt: return "simd_int";
    case InstructionClass::kSimdFp: return "simd_fp";
    case InstructionClass::kX87: return "x87";
    case InstructionClass::kCrypto: return "crypto";
    case InstructionClass::kString: return "string";
    case InstructionClass::kAtomic: return "atomic";
    case InstructionClass::kCacheFlush: return "cache_flush";
    case InstructionClass::kFence: return "fence";
    case InstructionClass::kSerialize: return "serialize";
    case InstructionClass::kSystem: return "system";
    case InstructionClass::kCount: break;
  }
  return "?";
}

}  // namespace aegis::isa
