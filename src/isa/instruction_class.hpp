// Behavioural instruction classes.
//
// The simulator's ground-truth leakage model maps *instruction classes* to
// HPC event responses; every ISA variant (src/isa/spec.hpp) is tagged with
// one class. The class is the behavioural unit ("what the instruction does
// to the micro-architecture"), whereas extension/category are the
// descriptive attributes the fuzzer's filtering stage clusters on.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace aegis::isa {

enum class InstructionClass : unsigned char {
  kNop = 0,
  kIntAlu,       // add/sub/cmp/test
  kIntMul,
  kIntDiv,
  kLogic,        // and/or/xor/shifts
  kBitManip,     // popcnt/bsf/lzcnt
  kMov,          // reg-reg moves
  kLoad,         // memory reads
  kStore,        // memory writes
  kPush,         // stack traffic
  kBranch,       // conditional jumps
  kCall,         // call/ret
  kFpAdd,
  kFpMul,
  kFpDiv,
  kSimdInt,      // packed integer
  kSimdFp,       // packed float
  kX87,
  kCrypto,       // aesenc etc.
  kString,       // rep movs/stos
  kAtomic,       // lock-prefixed rmw
  kCacheFlush,   // clflush/clflushopt
  kFence,        // mfence/lfence/sfence
  kSerialize,    // cpuid-like
  kSystem,       // privileged
  kCount
};

inline constexpr std::size_t kNumInstructionClasses =
    static_cast<std::size_t>(InstructionClass::kCount);

/// Short stable name ("int_alu", "cache_flush", ...).
std::string_view to_string(InstructionClass c) noexcept;

/// Per-class value container indexable by InstructionClass.
template <typename T>
class ClassVector {
 public:
  constexpr T& operator[](InstructionClass c) noexcept {
    return data_[static_cast<std::size_t>(c)];
  }
  constexpr const T& operator[](InstructionClass c) const noexcept {
    return data_[static_cast<std::size_t>(c)];
  }
  constexpr T& at_index(std::size_t i) noexcept { return data_[i]; }
  constexpr const T& at_index(std::size_t i) const noexcept { return data_[i]; }
  constexpr std::size_t size() const noexcept { return data_.size(); }
  constexpr auto begin() noexcept { return data_.begin(); }
  constexpr auto end() noexcept { return data_.end(); }
  constexpr auto begin() const noexcept { return data_.begin(); }
  constexpr auto end() const noexcept { return data_.end(); }

 private:
  std::array<T, kNumInstructionClasses> data_{};
};

}  // namespace aegis::isa
