#include "isa/spec.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace aegis::isa {

std::string_view to_string(CpuModel m) noexcept {
  switch (m) {
    case CpuModel::kIntelXeonE5_1650: return "Intel Xeon E5-1650";
    case CpuModel::kIntelXeonE5_4617: return "Intel Xeon E5-4617";
    case CpuModel::kAmdEpyc7252: return "AMD EPYC 7252";
    case CpuModel::kAmdEpyc7313P: return "AMD EPYC 7313P";
  }
  return "?";
}

std::string_view to_token(CpuModel m) noexcept {
  switch (m) {
    case CpuModel::kIntelXeonE5_1650: return "IntelXeonE5_1650";
    case CpuModel::kIntelXeonE5_4617: return "IntelXeonE5_4617";
    case CpuModel::kAmdEpyc7252: return "AmdEpyc7252";
    case CpuModel::kAmdEpyc7313P: return "AmdEpyc7313P";
  }
  return "?";
}

Vendor vendor_of(CpuModel m) noexcept {
  switch (m) {
    case CpuModel::kIntelXeonE5_1650:
    case CpuModel::kIntelXeonE5_4617:
      return Vendor::kIntel;
    case CpuModel::kAmdEpyc7252:
    case CpuModel::kAmdEpyc7313P:
      return Vendor::kAmd;
  }
  return Vendor::kIntel;
}

int family_of(CpuModel m) noexcept {
  // Table I groups the two Xeon E5 models into one family and the two EPYC
  // models into another; family members share near-identical event lists.
  return vendor_of(m) == Vendor::kIntel ? 0 : 1;
}

std::string_view to_string(Extension e) noexcept {
  switch (e) {
    case Extension::kBase: return "BASE";
    case Extension::kMmx: return "MMX";
    case Extension::kX87Fpu: return "X87-FPU";
    case Extension::kSse: return "SSE";
    case Extension::kSse2: return "SSE2";
    case Extension::kSse4: return "SSE4";
    case Extension::kAvx: return "AVX";
    case Extension::kAvx2: return "AVX2";
    case Extension::kAvx512: return "AVX512";
    case Extension::kFma: return "FMA";
    case Extension::kBmi: return "BMI";
    case Extension::kAes: return "AES";
    case Extension::kSha: return "SHA";
    case Extension::kTsx: return "TSX";
    case Extension::kClflushOpt: return "CLFLUSHOPT";
    case Extension::kSystem: return "SYSTEM";
    case Extension::kCount: break;
  }
  return "?";
}

std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::kArith: return "ARITH";
    case Category::kLogical: return "LOGICAL";
    case Category::kDataXfer: return "DATAXFER";
    case Category::kBranch: return "BRANCH";
    case Category::kFloat: return "FLOAT";
    case Category::kSimd: return "SIMD";
    case Category::kStringOp: return "STRINGOP";
    case Category::kBitByte: return "BITBYTE";
    case Category::kCrypto: return "CRYPTO";
    case Category::kSemaphore: return "SEMAPHORE";
    case Category::kFlush: return "FLUSH";
    case Category::kFence: return "FENCE";
    case Category::kSystemOp: return "SYSTEM";
    case Category::kNopCat: return "NOP";
    case Category::kCount: break;
  }
  return "?";
}

namespace {

struct CatalogEntry {
  const char* mnemonic;
  InstructionClass iclass;
  Category category;
  Extension extension;
  bool allows_memory;   // has reg-mem / mem-reg encodings
  bool allows_store;    // has mem-destination encodings
  std::uint8_t uops;    // base micro-op cost
};

// Mnemonic catalog. Expansion over operand widths and encodings below blows
// this up to uops.info scale (~14 k variants per CPU).
constexpr CatalogEntry kCatalog[] = {
    // --- BASE integer arithmetic ---
    {"ADD", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"SUB", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"ADC", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"SBB", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"INC", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"DEC", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"NEG", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, true, 1},
    {"CMP", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, false, 1},
    {"TEST", InstructionClass::kIntAlu, Category::kArith, Extension::kBase, true, false, 1},
    {"IMUL", InstructionClass::kIntMul, Category::kArith, Extension::kBase, true, false, 1},
    {"MUL", InstructionClass::kIntMul, Category::kArith, Extension::kBase, true, false, 2},
    {"IDIV", InstructionClass::kIntDiv, Category::kArith, Extension::kBase, true, false, 10},
    {"DIV", InstructionClass::kIntDiv, Category::kArith, Extension::kBase, true, false, 10},
    // --- BASE logical / shifts ---
    {"AND", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"OR", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"XOR", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"NOT", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"SHL", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"SHR", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"SAR", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"ROL", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"ROR", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 1},
    {"SHLD", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 2},
    {"SHRD", InstructionClass::kLogic, Category::kLogical, Extension::kBase, true, true, 2},
    // --- data transfer ---
    {"MOV", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, true, 1},
    {"MOVZX", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"MOVSX", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"XCHG", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, true, 2},
    {"LEA", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, false, false, 1},
    {"CMOVA", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"CMOVB", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"CMOVE", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"CMOVNE", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, true, false, 1},
    {"BSWAP", InstructionClass::kMov, Category::kDataXfer, Extension::kBase, false, false, 1},
    {"PUSH", InstructionClass::kPush, Category::kDataXfer, Extension::kBase, true, true, 1},
    {"POP", InstructionClass::kPush, Category::kDataXfer, Extension::kBase, true, true, 1},
    // --- branch / control ---
    {"JMP", InstructionClass::kBranch, Category::kBranch, Extension::kBase, true, false, 1},
    {"JE", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JNE", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JA", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JB", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JG", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JL", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JGE", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JLE", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JS", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JNS", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JO", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"JP", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 1},
    {"LOOP", InstructionClass::kBranch, Category::kBranch, Extension::kBase, false, false, 2},
    {"CALL", InstructionClass::kCall, Category::kBranch, Extension::kBase, true, false, 2},
    {"RET", InstructionClass::kCall, Category::kBranch, Extension::kBase, false, false, 2},
    // --- bit manipulation ---
    {"POPCNT", InstructionClass::kBitManip, Category::kBitByte, Extension::kSse4, true, false, 1},
    {"BSF", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, false, 1},
    {"BSR", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, false, 1},
    {"BT", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, false, 1},
    {"BTS", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, true, 1},
    {"BTR", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, true, 1},
    {"BTC", InstructionClass::kBitManip, Category::kBitByte, Extension::kBase, true, true, 1},
    {"LZCNT", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"TZCNT", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"ANDN", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"BEXTR", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"BLSI", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"BLSR", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"BZHI", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"PDEP", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    {"PEXT", InstructionClass::kBitManip, Category::kBitByte, Extension::kBmi, true, false, 1},
    // --- string ops ---
    {"MOVS", InstructionClass::kString, Category::kStringOp, Extension::kBase, true, true, 4},
    {"STOS", InstructionClass::kString, Category::kStringOp, Extension::kBase, true, true, 3},
    {"LODS", InstructionClass::kString, Category::kStringOp, Extension::kBase, true, false, 3},
    {"CMPS", InstructionClass::kString, Category::kStringOp, Extension::kBase, true, false, 4},
    {"SCAS", InstructionClass::kString, Category::kStringOp, Extension::kBase, true, false, 3},
    // --- atomics ---
    {"LOCK_ADD", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 4},
    {"LOCK_OR", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 4},
    {"LOCK_AND", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 4},
    {"LOCK_XOR", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 4},
    {"LOCK_XADD", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 5},
    {"LOCK_CMPXCHG", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 5},
    {"LOCK_DEC", InstructionClass::kAtomic, Category::kSemaphore, Extension::kBase, true, true, 4},
    // --- flush / fence / serialize ---
    {"CLFLUSH", InstructionClass::kCacheFlush, Category::kFlush, Extension::kBase, true, false, 2},
    {"CLFLUSHOPT", InstructionClass::kCacheFlush, Category::kFlush, Extension::kClflushOpt, true, false, 2},
    {"PREFETCHT0", InstructionClass::kLoad, Category::kDataXfer, Extension::kSse, true, false, 1},
    {"PREFETCHNTA", InstructionClass::kLoad, Category::kDataXfer, Extension::kSse, true, false, 1},
    {"MFENCE", InstructionClass::kFence, Category::kFence, Extension::kSse2, false, false, 3},
    {"LFENCE", InstructionClass::kFence, Category::kFence, Extension::kSse2, false, false, 2},
    {"SFENCE", InstructionClass::kFence, Category::kFence, Extension::kSse, false, false, 2},
    {"PAUSE", InstructionClass::kNop, Category::kNopCat, Extension::kSse2, false, false, 1},
    {"CPUID", InstructionClass::kSerialize, Category::kSystemOp, Extension::kBase, false, false, 20},
    {"RDTSC", InstructionClass::kSerialize, Category::kSystemOp, Extension::kBase, false, false, 8},
    {"RDTSCP", InstructionClass::kSerialize, Category::kSystemOp, Extension::kBase, false, false, 10},
    {"NOP", InstructionClass::kNop, Category::kNopCat, Extension::kBase, false, false, 1},
    // --- x87 ---
    {"FADD", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, false, 1},
    {"FSUB", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, false, 1},
    {"FMUL", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, false, 1},
    {"FDIV", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, false, 8},
    {"FLD", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, false, 1},
    {"FST", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, true, true, 1},
    {"FSQRT", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 10},
    {"FSIN", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 40},
    {"FCOS", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 40},
    {"FPTAN", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 50},
    {"FXCH", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 1},
    {"FABS", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 1},
    {"FCHS", InstructionClass::kX87, Category::kFloat, Extension::kX87Fpu, false, false, 1},
    // --- scalar SSE float ---
    {"ADDSS", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse, true, false, 1},
    {"ADDSD", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse2, true, false, 1},
    {"SUBSS", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse, true, false, 1},
    {"SUBSD", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse2, true, false, 1},
    {"MULSS", InstructionClass::kFpMul, Category::kFloat, Extension::kSse, true, false, 1},
    {"MULSD", InstructionClass::kFpMul, Category::kFloat, Extension::kSse2, true, false, 1},
    {"DIVSS", InstructionClass::kFpDiv, Category::kFloat, Extension::kSse, true, false, 7},
    {"DIVSD", InstructionClass::kFpDiv, Category::kFloat, Extension::kSse2, true, false, 9},
    {"SQRTSS", InstructionClass::kFpDiv, Category::kFloat, Extension::kSse, true, false, 8},
    {"SQRTSD", InstructionClass::kFpDiv, Category::kFloat, Extension::kSse2, true, false, 10},
    {"COMISS", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse, true, false, 1},
    {"COMISD", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse2, true, false, 1},
    {"CVTSI2SS", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse, true, false, 2},
    {"CVTSD2SI", InstructionClass::kFpAdd, Category::kFloat, Extension::kSse2, true, false, 2},
    // --- MMX ---
    {"PADDB_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PADDW_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PSUBB_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PMULLW_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 2},
    {"PAND_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"POR_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PXOR_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PCMPEQB_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PACKSSWB_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"PUNPCKLBW_mmx", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, true, false, 1},
    {"EMMS", InstructionClass::kSimdInt, Category::kSimd, Extension::kMmx, false, false, 6},
    // --- packed SSE/SSE2 ---
    {"ADDPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"ADDPD", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse2, true, false, 1},
    {"MULPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"MULPD", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse2, true, false, 1},
    {"DIVPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 10},
    {"DIVPD", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse2, true, false, 13},
    {"MAXPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"MINPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"SHUFPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"UNPCKLPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse, true, false, 1},
    {"MOVAPS", InstructionClass::kSimdFp, Category::kDataXfer, Extension::kSse, true, true, 1},
    {"MOVUPS", InstructionClass::kSimdFp, Category::kDataXfer, Extension::kSse, true, true, 1},
    {"MOVDQA", InstructionClass::kSimdInt, Category::kDataXfer, Extension::kSse2, true, true, 1},
    {"MOVDQU", InstructionClass::kSimdInt, Category::kDataXfer, Extension::kSse2, true, true, 1},
    {"MOVNTDQ", InstructionClass::kStore, Category::kDataXfer, Extension::kSse2, true, true, 2},
    {"PADDB", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PADDW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PADDD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PADDQ", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PSUBB", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PMULLW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 2},
    {"PMULUDQ", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 2},
    {"PAND", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"POR", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PXOR", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PSLLW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PSRLW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PCMPEQB", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PSHUFD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    {"PUNPCKLBW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse2, true, false, 1},
    // --- SSE4 ---
    {"PMULLD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 2},
    {"PMINSD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 1},
    {"PMAXSD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 1},
    {"PBLENDW", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 1},
    {"PEXTRD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, true, 2},
    {"PINSRD", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 2},
    {"PTEST", InstructionClass::kSimdInt, Category::kSimd, Extension::kSse4, true, false, 1},
    {"ROUNDPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse4, true, false, 1},
    {"DPPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse4, true, false, 3},
    {"BLENDVPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kSse4, true, false, 1},
    {"PCMPESTRI", InstructionClass::kSimdInt, Category::kStringOp, Extension::kSse4, true, false, 4},
    {"PCMPISTRI", InstructionClass::kSimdInt, Category::kStringOp, Extension::kSse4, true, false, 3},
    // --- AVX / AVX2 (VEX; widths 128/256) ---
    {"VADDPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VADDPD", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VSUBPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VMULPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VMULPD", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VDIVPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 10},
    {"VSQRTPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 12},
    {"VMAXPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VSHUFPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VBLENDPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VMOVAPS", InstructionClass::kSimdFp, Category::kDataXfer, Extension::kAvx, true, true, 1},
    {"VMOVUPS", InstructionClass::kSimdFp, Category::kDataXfer, Extension::kAvx, true, true, 1},
    {"VPERMILPS", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx, true, false, 1},
    {"VBROADCASTSS", InstructionClass::kSimdFp, Category::kDataXfer, Extension::kAvx, true, false, 1},
    {"VPADDB", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPADDD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPADDQ", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPSUBD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPMULLD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 2},
    {"VPAND", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPXOR", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPSLLD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPCMPEQD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPSHUFB", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPERMD", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, true, false, 1},
    {"VPGATHERDD", InstructionClass::kLoad, Category::kDataXfer, Extension::kAvx2, true, false, 8},
    {"VPMOVMSKB", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx2, false, false, 1},
    // --- FMA ---
    {"VFMADD132PS", InstructionClass::kSimdFp, Category::kSimd, Extension::kFma, true, false, 1},
    {"VFMADD213PS", InstructionClass::kSimdFp, Category::kSimd, Extension::kFma, true, false, 1},
    {"VFMADD231PS", InstructionClass::kSimdFp, Category::kSimd, Extension::kFma, true, false, 1},
    {"VFMSUB132PD", InstructionClass::kSimdFp, Category::kSimd, Extension::kFma, true, false, 1},
    {"VFNMADD213PD", InstructionClass::kSimdFp, Category::kSimd, Extension::kFma, true, false, 1},
    // --- crypto ---
    {"AESENC", InstructionClass::kCrypto, Category::kCrypto, Extension::kAes, true, false, 2},
    {"AESENCLAST", InstructionClass::kCrypto, Category::kCrypto, Extension::kAes, true, false, 2},
    {"AESDEC", InstructionClass::kCrypto, Category::kCrypto, Extension::kAes, true, false, 2},
    {"AESKEYGENASSIST", InstructionClass::kCrypto, Category::kCrypto, Extension::kAes, true, false, 3},
    {"PCLMULQDQ", InstructionClass::kCrypto, Category::kCrypto, Extension::kAes, true, false, 3},
    {"SHA1RNDS4", InstructionClass::kCrypto, Category::kCrypto, Extension::kSha, true, false, 3},
    {"SHA256RNDS2", InstructionClass::kCrypto, Category::kCrypto, Extension::kSha, true, false, 3},
    {"SHA256MSG1", InstructionClass::kCrypto, Category::kCrypto, Extension::kSha, true, false, 2},
    // --- TSX ---
    {"XBEGIN", InstructionClass::kSystem, Category::kSystemOp, Extension::kTsx, false, false, 8},
    {"XEND", InstructionClass::kSystem, Category::kSystemOp, Extension::kTsx, false, false, 8},
    {"XABORT", InstructionClass::kSystem, Category::kSystemOp, Extension::kTsx, false, false, 4},
    {"XTEST", InstructionClass::kSystem, Category::kSystemOp, Extension::kTsx, false, false, 2},
    // --- privileged (legal encodings; #GP in user mode) ---
    {"RDMSR", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 30},
    {"WRMSR", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 30},
    {"INVLPG", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, true, false, 30},
    {"INVD", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 100},
    {"WBINVD", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 100},
    {"HLT", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 10},
    {"LGDT", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, true, false, 20},
    {"LIDT", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, true, false, 20},
    {"LTR", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    {"CLTS", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 10},
    {"MOV_CR", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    {"MOV_DR", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    {"IN", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    {"OUT", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    {"VMCALL", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 50},
    {"RDPMC_priv", InstructionClass::kSystem, Category::kSystemOp, Extension::kSystem, false, false, 20},
    // --- AVX512 (not supported by any Table-I CPU; big chunk of the spec) ---
    {"VADDPS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VADDPD_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VMULPS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VMULPD_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VDIVPS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 10},
    {"VFMADD132PS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VFMADD213PD_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPADDD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPADDQ_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPMULLD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VPANDD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPXORD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPERMW_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VPERMT2D_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VPCOMPRESSD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, true, 2},
    {"VPEXPANDD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VSCATTERDPS_z", InstructionClass::kStore, Category::kDataXfer, Extension::kAvx512, true, true, 10},
    {"VGATHERDPS_z", InstructionClass::kLoad, Category::kDataXfer, Extension::kAvx512, true, false, 10},
    {"VPTERNLOGD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VRNDSCALEPS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VREDUCEPD_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VSHUFF32X4_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 2},
    {"VPBROADCASTD_z", InstructionClass::kSimdInt, Category::kDataXfer, Extension::kAvx512, true, false, 1},
    {"VMOVDQA32_z", InstructionClass::kSimdInt, Category::kDataXfer, Extension::kAvx512, true, true, 1},
    {"VMOVDQU64_z", InstructionClass::kSimdInt, Category::kDataXfer, Extension::kAvx512, true, true, 1},
    {"VCMPPS_z", InstructionClass::kSimdFp, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"VPCMPD_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, true, false, 1},
    {"KANDW_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, false, false, 1},
    {"KORW_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, false, false, 1},
    {"KSHIFTLW_z", InstructionClass::kSimdInt, Category::kSimd, Extension::kAvx512, false, false, 1},
};

bool extension_supported(CpuModel m, Extension e) noexcept {
  const bool intel = vendor_of(m) == Vendor::kIntel;
  switch (e) {
    case Extension::kBase:
    case Extension::kMmx:
    case Extension::kX87Fpu:
    case Extension::kSse:
    case Extension::kSse2:
    case Extension::kSse4:
    case Extension::kAvx:
    case Extension::kBmi:
    case Extension::kAes:
    case Extension::kClflushOpt:
      return true;
    case Extension::kAvx2:
    case Extension::kFma:
    case Extension::kSha:
      return !intel;  // Sandy-Bridge-era Xeons predate AVX2/FMA/SHA
    case Extension::kTsx:
      return intel;
    case Extension::kAvx512:
      return false;   // none of the Table-I CPUs support AVX512
    case Extension::kSystem:
      return true;    // encodings decode, but privilege-fault in user mode
    case Extension::kCount:
      break;
  }
  return false;
}

bool is_vector_extension(Extension e) noexcept {
  switch (e) {
    case Extension::kMmx:
    case Extension::kSse:
    case Extension::kSse2:
    case Extension::kSse4:
    case Extension::kAvx:
    case Extension::kAvx2:
    case Extension::kAvx512:
    case Extension::kFma:
    case Extension::kAes:
    case Extension::kSha:
      return true;
    default:
      return false;
  }
}

/// Paper scale: total variant count and cleaned (legal) count per CPU.
struct SpecTargets {
  std::size_t total;
  std::size_t legal;
};

SpecTargets targets_for(CpuModel m) noexcept {
  // Section VI-C: 24.16 % of 14014 = 3386 legal (Intel); 24.31 % of 14016 =
  // 3407 (AMD). The generator pads to exactly these totals so Table III and
  // the fuzzing-throughput numbers are computed over the same gadget space.
  return vendor_of(m) == Vendor::kIntel ? SpecTargets{14014, 3386}
                                        : SpecTargets{14016, 3407};
}

}  // namespace

// aegis-rng: stream(spec-generate)
IsaSpecification IsaSpecification::generate(CpuModel model) {
  IsaSpecification spec;
  spec.model_ = model;
  const SpecTargets targets = targets_for(model);
  // Seed only controls cosmetic attribute jitter; structure is fixed.
  util::Rng rng(0xA3515ULL + static_cast<std::uint64_t>(family_of(model)));

  auto& out = spec.variants_;
  out.reserve(targets.total);
  std::uint32_t uid = 0;

  auto emit = [&](const CatalogEntry& e, std::string suffix,
                  std::uint16_t width, bool mem, bool store) {
    InstructionVariant v;
    v.uid = uid++;
    v.mnemonic = std::string(e.mnemonic) + std::move(suffix);
    v.extension = e.extension;
    v.category = e.category;
    v.iclass = e.iclass;
    v.operand_width = width;
    v.has_memory_operand = mem;
    v.is_store = store;
    v.mem_bytes = mem ? static_cast<std::uint16_t>(width / 8) : 0;
    v.micro_ops = static_cast<std::uint8_t>(
        e.uops + (mem ? 1 : 0) + (width >= 256 ? 1 : 0));
    if (e.extension == Extension::kSystem) {
      v.fault = FaultKind::kPrivilegeFault;
    } else if (!extension_supported(model, e.extension)) {
      v.fault = FaultKind::kIllegalOpcode;
    }
    out.push_back(std::move(v));
  };

  for (const auto& e : kCatalog) {
    if (is_vector_extension(e.extension)) {
      // Vector widths per extension; AVX covers 128/256, AVX512 adds masks.
      std::vector<std::uint16_t> widths;
      switch (e.extension) {
        case Extension::kMmx: widths = {64}; break;
        case Extension::kAvx:
        case Extension::kAvx2:
        case Extension::kFma: widths = {128, 256}; break;
        case Extension::kAvx512: widths = {128, 256, 512}; break;
        default: widths = {128}; break;
      }
      for (std::uint16_t w : widths) {
        const char* wname = w == 64    ? "_64"
                            : w == 128 ? "_xmm"
                            : w == 256 ? "_ymm"
                                       : "_zmm";
        emit(e, std::string(wname) + "_rr", w, false, false);
        if (e.allows_memory) emit(e, std::string(wname) + "_rm", w, true, false);
        if (e.allows_store) emit(e, std::string(wname) + "_mr", w, true, true);
        if (e.extension == Extension::kAvx512) {
          // Masked and zero-masked encodings: the bulk of AVX512's footprint.
          emit(e, std::string(wname) + "_rr_k", w, false, false);
          emit(e, std::string(wname) + "_rr_kz", w, false, false);
          if (e.allows_memory) {
            emit(e, std::string(wname) + "_rm_k", w, true, false);
            emit(e, std::string(wname) + "_rm_kz", w, true, false);
          }
        }
      }
    } else if (e.extension == Extension::kSystem ||
               e.category == Category::kSystemOp ||
               e.category == Category::kFence ||
               e.category == Category::kFlush ||
               e.category == Category::kNopCat) {
      emit(e, "", 64, e.allows_memory, false);
    } else if (e.category == Category::kStringOp &&
               e.extension == Extension::kBase) {
      for (std::uint16_t w : {8, 16, 32, 64}) {
        emit(e, "_w" + std::to_string(int(w)), w, true, e.allows_store);
        emit(e, "_rep_w" + std::to_string(int(w)), w, true, e.allows_store);
      }
    } else {
      // Scalar: expand over widths and operand encodings like uops.info does
      // (reg-reg, reg-mem, mem-reg, reg-imm8, reg-imm32, mem-imm).
      for (std::uint16_t w : {8, 16, 32, 64}) {
        const std::string ws = "_w" + std::to_string(int(w));
        emit(e, ws + "_rr", w, false, false);
        emit(e, ws + "_ri8", w, false, false);
        if (w >= 32) emit(e, ws + "_ri32", w, false, false);
        if (e.allows_memory) {
          emit(e, ws + "_rm", w, true, false);
          if (e.allows_store) {
            emit(e, ws + "_mr", w, true, true);
            emit(e, ws + "_mi", w, true, true);
          }
        }
      }
    }
  }

  // Pad the legal count up to the paper's cleaned-list size with multi-byte
  // NOP encodings (x86 really does define a large family of these).
  std::size_t legal = 0;
  for (const auto& v : out) {
    if (v.legal()) ++legal;
  }
  if (legal > targets.legal) {
    // Deterministically demote surplus legal variants to microcode-disabled
    // (#UD) status, scanning from the tail of the list.
    std::size_t surplus = legal - targets.legal;
    for (auto it = out.rbegin(); it != out.rend() && surplus > 0; ++it) {
      if (it->legal() && it->extension != Extension::kBase) {
        it->fault = FaultKind::kIllegalOpcode;
        --surplus;
      }
    }
  } else {
    for (std::size_t i = legal; i < targets.legal; ++i) {
      InstructionVariant v;
      v.uid = uid++;
      v.mnemonic = "NOP_ml" + std::to_string(i % 97) + "_" + std::to_string(i);
      v.extension = Extension::kBase;
      v.category = Category::kNopCat;
      v.iclass = InstructionClass::kNop;
      v.operand_width = static_cast<std::uint16_t>(8 << rng.uniform_index(4));
      v.micro_ops = 1;
      out.push_back(std::move(v));
    }
  }

  // Pad the total with reserved/undefined encodings (#UD everywhere).
  if (out.size() > targets.total) {
    throw std::logic_error("IsaSpecification: catalog expansion exceeds target total");
  }
  const std::array<Category, 5> junk_cats = {
      Category::kArith, Category::kSimd, Category::kDataXfer,
      Category::kLogical, Category::kSystemOp};
  std::size_t junk_idx = 0;
  while (out.size() < targets.total) {
    InstructionVariant v;
    v.uid = uid++;
    v.mnemonic = "RESERVED_ENC_" + std::to_string(junk_idx);
    v.extension = Extension::kBase;
    v.category = junk_cats[junk_idx % junk_cats.size()];
    v.iclass = InstructionClass::kNop;
    v.fault = FaultKind::kIllegalOpcode;
    out.push_back(std::move(v));
    ++junk_idx;
  }
  return spec;
}

std::vector<const InstructionVariant*> IsaSpecification::legal_variants() const {
  std::vector<const InstructionVariant*> result;
  result.reserve(variants_.size() / 4 + 1);
  for (const auto& v : variants_) {
    if (v.legal()) result.push_back(&v);
  }
  return result;
}

std::size_t IsaSpecification::legal_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(variants_.begin(), variants_.end(),
                    [](const InstructionVariant& v) { return v.legal(); }));
}

double IsaSpecification::illegal_opcode_fault_fraction() const noexcept {
  std::size_t faults = 0, ud = 0;
  for (const auto& v : variants_) {
    if (!v.legal()) {
      ++faults;
      if (v.fault == FaultKind::kIllegalOpcode) ++ud;
    }
  }
  return faults == 0 ? 0.0 : static_cast<double>(ud) / static_cast<double>(faults);
}

const InstructionVariant& IsaSpecification::by_uid(std::uint32_t uid) const {
  if (uid >= variants_.size() || variants_[uid].uid != uid) {
    throw std::out_of_range("IsaSpecification::by_uid");
  }
  return variants_[uid];
}

}  // namespace aegis::isa
