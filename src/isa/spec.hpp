// Synthetic machine-readable ISA specification.
//
// The paper obtains an attributed x86 instruction list from uops.info: each
// *variant* (mnemonic + operand encoding) carries an extension (BASE, SSE,
// AVX, ...) and a general category (ARITH, LOGICAL, ...), and only ~24 % of
// variants execute legally on a given microarchitecture (Section VI-C).
//
// No uops.info dump ships with this repo, so IsaSpecification::generate()
// synthesizes a list with the same structure and scale: ~14 k variants per
// CPU built from a mnemonic catalog expanded over operand encodings, with
// legality decided by the CPU's supported-extension set plus privilege
// rules. The fuzzer performs the paper's cleanup step against this list by
// actually test-executing every variant on the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction_class.hpp"

namespace aegis::isa {

/// Processor models used across the paper's tables.
enum class CpuModel : unsigned char {
  kIntelXeonE5_1650,
  kIntelXeonE5_4617,
  kAmdEpyc7252,
  kAmdEpyc7313P,
};

enum class Vendor : unsigned char { kIntel, kAmd };

std::string_view to_string(CpuModel m) noexcept;
/// Stable identifier-shaped token ("AmdEpyc7252") for artifact headers and
/// environment selectors; the inverse of pmu::backend::parse_cpu_model.
std::string_view to_token(CpuModel m) noexcept;
Vendor vendor_of(CpuModel m) noexcept;
/// CPUs in the same family expose near-identical HPC event lists (Table I).
int family_of(CpuModel m) noexcept;

/// ISA extension attribute, as in the uops.info "extension" field.
enum class Extension : unsigned char {
  kBase = 0,
  kMmx,
  kX87Fpu,
  kSse,
  kSse2,
  kSse4,
  kAvx,
  kAvx2,
  kAvx512,
  kFma,
  kBmi,
  kAes,
  kSha,
  kTsx,       // Intel-only
  kClflushOpt,
  kSystem,    // privileged/system extension group
  kCount
};

std::string_view to_string(Extension e) noexcept;

/// General category attribute, as in the uops.info "category" field.
enum class Category : unsigned char {
  kArith = 0,
  kLogical,
  kDataXfer,
  kBranch,
  kFloat,
  kSimd,
  kStringOp,
  kBitByte,
  kCrypto,
  kSemaphore,
  kFlush,
  kFence,
  kSystemOp,
  kNopCat,
  kCount
};

std::string_view to_string(Category c) noexcept;

/// Fault raised when an illegal variant is test-executed during cleanup.
enum class FaultKind : unsigned char {
  kNone = 0,           // executes normally
  kIllegalOpcode,      // #UD — unsupported extension / bad encoding
  kPrivilegeFault,     // #GP — ring-0 only instruction in user mode
};

/// One instruction variant: a mnemonic with a concrete operand encoding.
struct InstructionVariant {
  std::uint32_t uid = 0;
  std::string mnemonic;           // e.g. "VADDPS_ymm_ymm_ymm"
  Extension extension = Extension::kBase;
  Category category = Category::kArith;
  InstructionClass iclass = InstructionClass::kNop;
  std::uint16_t operand_width = 64;  // bits
  bool has_memory_operand = false;
  std::uint8_t micro_ops = 1;        // dispatch cost in uops
  std::uint16_t mem_bytes = 0;       // bytes touched if memory operand
  bool is_store = false;             // memory operand is written
  FaultKind fault = FaultKind::kNone;

  bool legal() const noexcept { return fault == FaultKind::kNone; }
};

/// The full attributed variant list for one CPU model.
class IsaSpecification {
 public:
  /// Deterministically builds the variant list for the given CPU.
  static IsaSpecification generate(CpuModel model);

  CpuModel model() const noexcept { return model_; }
  const std::vector<InstructionVariant>& variants() const noexcept {
    return variants_;
  }

  /// Variants that execute without fault on this CPU (the paper's cleaned
  /// list; ~24 % of the total).
  std::vector<const InstructionVariant*> legal_variants() const;

  std::size_t total_count() const noexcept { return variants_.size(); }
  std::size_t legal_count() const noexcept;

  /// Of the faulting variants, the fraction that fault with #UD (paper:
  /// ~98.8 % of all faults are illegal-opcode).
  double illegal_opcode_fault_fraction() const noexcept;

  const InstructionVariant& by_uid(std::uint32_t uid) const;

 private:
  CpuModel model_{};
  std::vector<InstructionVariant> variants_;
};

}  // namespace aegis::isa
