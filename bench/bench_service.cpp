// Multi-tenant protection-service load generator.
//
// Sweeps fleet sizes through the ProtectionService daemon — template
// registration per tenant (exercising the single-flight TemplateCache and
// its disk warm start), then one protected session per tenant through the
// bounded submission queue — and reports throughput, p50/p99 session
// latency and cache hit rate per fleet size:
//
//   bench_service [output.json]   full sweep (1..48 tenants), JSON emitted
//                                 to the path (default stdout); committed
//                                 as BENCH_service.json
//   bench_service --smoke         bounded run for CI: asserts non-zero
//                                 throughput, zero refusals under an ample
//                                 budget, and single-flight analysis
//
// Telemetry dumps (combinable with --smoke or the sweep; every run shares
// one wall-clock telemetry registry threaded through ServiceConfig):
//   --trace FILE     chrome://tracing / Perfetto trace_event JSON
//   --prom FILE      Prometheus text exposition of the final metrics
//   --stats FILE     JSON snapshot (the tools/aegis_top input format)
//   --recorder FILE  flight-recorder binary dump (aegis_top --recorder)
//
// AEGIS_SCALE scales per-session slice counts; AEGIS_THREADS sets the
// session-pool worker count (0 = hardware concurrency).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "service/protection_service.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/time_source.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace aegis::bench {
namespace {

struct SweepPoint {
  std::size_t tenants = 0;
  double wall_seconds = 0.0;
  double throughput = 0.0;       // sessions / second
  double p50_latency_ms = 0.0;   // enqueue -> completion
  double p99_latency_ms = 0.0;
  double cache_hit_rate = 0.0;
  std::size_t analyses_run = 0;
  std::size_t warm_starts = 0;
  std::size_t refused = 0;
  std::size_t degraded = 0;
  double mean_injected_reps = 0.0;
};

struct Scenario {
  core::Aegis engine{cpu_from_env()};
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  core::OfflineConfig offline;
  dp::MechanismConfig mechanism;
  std::size_t session_slices;
  std::string cache_dir;

  explicit Scenario(double scale) {
    attack::WfaScale wfa;
    wfa.sites = 4;
    wfa.slices = 100;
    secrets = attack::make_wfa_secrets(wfa);
    offline = core::make_quick_offline_config();
    offline.profiler.ranking_runs_per_secret = 3;
    offline.fuzz_top_events = 12;
    offline.set_num_threads(threads_from_env());
    mechanism.kind = dp::MechanismKind::kLaplace;
    mechanism.epsilon = 0.05;
    session_slices = scaled(60, scale, 20);
    cache_dir = "/tmp/aegis_bench_service_cache";
    std::filesystem::create_directories(cache_dir);
  }
};

double ms(double seconds) { return seconds * 1e3; }

// One registry + wall clock per fleet point: ServiceStats are derived from
// registry counters, so sharing a registry across points would make the
// per-point figures cumulative. The dump flags export the LAST point run.
struct TelemetrySink {
  telemetry::WallTimeSource wall;
  telemetry::Registry registry{&wall};
};

struct DumpOptions {
  const char* trace = nullptr;
  const char* prom = nullptr;
  const char* stats = nullptr;
  const char* recorder = nullptr;
  bool any() const {
    return trace != nullptr || prom != nullptr || stats != nullptr ||
           recorder != nullptr;
  }
};

template <typename Fn>
bool emit_telemetry_file(const char* path, const char* what, Fn&& fn) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "bench_service: cannot open " << what << " file " << path
              << "\n";
    return false;
  }
  fn(out);
  out.flush();
  if (out.tellp() <= 0) {
    std::cerr << "bench_service: " << what << " file " << path
              << " came out empty\n";
    return false;
  }
  std::cerr << "bench_service: wrote " << what << " " << path << "\n";
  return true;
}

bool dump_telemetry(const DumpOptions& dump, const TelemetrySink& sink) {
  bool ok = true;
  if (dump.trace != nullptr) {
    ok &= emit_telemetry_file(dump.trace, "trace", [&](std::ostream& os) {
      telemetry::write_trace_json(sink.registry, os);
    });
  }
  if (dump.prom != nullptr) {
    ok &= emit_telemetry_file(dump.prom, "prometheus", [&](std::ostream& os) {
      telemetry::write_prometheus(sink.registry.metrics().snapshot(), os);
    });
  }
  if (dump.stats != nullptr) {
    ok &= emit_telemetry_file(dump.stats, "snapshot", [&](std::ostream& os) {
      telemetry::write_json_snapshot(sink.registry, os);
    });
  }
  if (dump.recorder != nullptr) {
    ok &= emit_telemetry_file(
        dump.recorder, "flight-recorder dump", [&](std::ostream& os) {
          sink.registry.recorder().write_dump(os);
        });
    std::cerr << "bench_service: recorder captured "
              << sink.registry.recorder().drain().size() << " events, dropped "
              << sink.registry.recorder().dropped() << "\n";
  }
  return ok;
}

SweepPoint run_fleet_size(const Scenario& scenario, std::size_t tenants,
                          telemetry::Registry* registry) {
  service::ServiceConfig config;
  config.num_threads = threads_from_env();
  config.queue_capacity = 64;
  config.batch_size = 16;
  config.governor.default_epsilon_cap = 64.0;  // ample: nothing refused
  config.cache.cache_dir = scenario.cache_dir;
  config.telemetry = registry;
  service::ProtectionService svc(config);

  const auto t0 = std::chrono::steady_clock::now();
  // Every tenant registers the template (same key): 1 miss, N-1 hits, and
  // at most ONE analysis/warm-start thanks to single-flight.
  std::size_t tpl_id = 0;
  for (std::size_t t = 0; t < tenants; ++t) {
    tpl_id = svc.register_template(scenario.engine, *scenario.secrets[0],
                                   scenario.secrets, scenario.offline,
                                   scenario.mechanism, {}, 0xFEEDULL);
  }
  for (std::size_t t = 0; t < tenants; ++t) {
    service::SessionSubmission sub;
    sub.template_id = tpl_id;
    sub.request.tenant_id = t;
    sub.request.seed = util::split_mix64(0xBE7ACULL, t);
    sub.request.application =
        scenario.secrets[t % scenario.secrets.size()].get();
    sub.request.slices = scenario.session_slices;
    sub.request.per_slice_epsilon = scenario.mechanism.epsilon;
    if (!svc.submit(sub)) {
      std::cerr << "bench_service: submit rejected\n";
      std::exit(1);
    }
  }
  svc.drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const service::ServiceStats stats = svc.stats();
  const auto completed = svc.take_completed();
  std::vector<double> latencies;
  double injected = 0.0;
  for (const auto& done : completed) {
    latencies.push_back(done.latency_seconds);
    injected += done.result.injected_repetitions;
  }

  SweepPoint point;
  point.tenants = tenants;
  point.wall_seconds = wall;
  point.throughput = static_cast<double>(completed.size()) / wall;
  point.p50_latency_ms = ms(util::quantile(latencies, 0.50));
  point.p99_latency_ms = ms(util::quantile(latencies, 0.99));
  point.cache_hit_rate = stats.cache.hit_rate();
  point.analyses_run = stats.cache.analyses_run;
  point.warm_starts = stats.cache.warm_starts;
  point.refused = stats.sessions_refused;
  point.degraded = stats.sessions_degraded;
  point.mean_injected_reps =
      completed.empty() ? 0.0 : injected / static_cast<double>(completed.size());

  if (stats.sessions_completed + stats.sessions_refused !=
      static_cast<std::size_t>(tenants)) {
    std::cerr << "bench_service: lost sessions (completed "
              << stats.sessions_completed << " refused "
              << stats.sessions_refused << " of " << tenants << ")\n";
    std::exit(1);
  }
  return point;
}

void emit_json(std::ostream& out, const std::vector<SweepPoint>& sweep,
               const Scenario& scenario) {
  out << "{\n"
      << "  \"bench\": \"service\",\n"
      << "  \"cpu_model\": \"" << isa::to_token(scenario.engine.cpu())
      << "\",\n"
      << "  \"backend\": \"" << scenario.engine.backend().id() << "\",\n"
      << "  \"session_slices\": " << scenario.session_slices << ",\n"
      << "  \"mechanism\": \"laplace\",\n"
      << "  \"per_slice_epsilon\": " << scenario.mechanism.epsilon << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"tenants\": %zu, \"throughput_sessions_per_sec\": "
                  "%.1f, \"p50_latency_ms\": %.2f, \"p99_latency_ms\": %.2f, "
                  "\"cache_hit_rate\": %.4f, \"offline_analyses\": %zu, "
                  "\"warm_starts\": %zu, \"refused\": %zu, \"degraded\": %zu, "
                  "\"mean_injected_reps\": %.1f}%s\n",
                  p.tenants, p.throughput, p.p50_latency_ms, p.p99_latency_ms,
                  p.cache_hit_rate, p.analyses_run, p.warm_starts, p.refused,
                  p.degraded, p.mean_injected_reps,
                  i + 1 < sweep.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int run_smoke(const Scenario& scenario, const DumpOptions& dump) {
  print_header("bench_service --smoke");
  TelemetrySink sink;
  const SweepPoint point = run_fleet_size(scenario, 8, &sink.registry);
  std::cout << "tenants 8: " << util::fmt_f(point.throughput, 1)
            << " sessions/s, p50 " << util::fmt_f(point.p50_latency_ms, 1)
            << " ms, p99 " << util::fmt_f(point.p99_latency_ms, 1)
            << " ms, cache hit rate " << util::fmt_f(point.cache_hit_rate, 3)
            << ", analyses " << point.analyses_run << "+"
            << point.warm_starts << " warm\n";
  bool ok = true;
  if (!(point.throughput > 0.0)) {
    std::cerr << "SMOKE FAIL: zero throughput\n";
    ok = false;
  }
  if (point.refused != 0) {
    std::cerr << "SMOKE FAIL: " << point.refused
              << " sessions refused under an ample budget\n";
    ok = false;
  }
  if (point.analyses_run + point.warm_starts != 1) {
    std::cerr << "SMOKE FAIL: single-flight violated ("
              << point.analyses_run << " analyses, " << point.warm_starts
              << " warm starts)\n";
    ok = false;
  }
  // Telemetry dumps double as the smoke check that the exporters produce
  // non-empty output from a real service run.
  if (!dump_telemetry(dump, sink)) {
    std::cerr << "SMOKE FAIL: telemetry dump empty or unwritable\n";
    ok = false;
  }
  std::cout << (ok ? "SMOKE OK\n" : "SMOKE FAIL\n");
  return ok ? 0 : 1;
}

int run(int argc, char** argv) {
  const double scale = [&] {
    if (const char* env = std::getenv("AEGIS_SCALE")) {
      const double s = std::atof(env);
      if (s > 0) return s;
    }
    return 1.0;
  }();
  Scenario scenario(scale);

  bool smoke = false;
  const char* out_path = nullptr;
  DumpOptions dump;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_service: " << name << " needs a file argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace") {
      dump.trace = flag_value("--trace");
    } else if (arg == "--prom") {
      dump.prom = flag_value("--prom");
    } else if (arg == "--stats") {
      dump.stats = flag_value("--stats");
    } else if (arg == "--recorder") {
      dump.recorder = flag_value("--recorder");
    } else {
      out_path = argv[i];
    }
  }

  if (smoke) {
    return run_smoke(scenario, dump);
  }

  print_header("bench_service: multi-tenant fleet sweep");
  std::vector<SweepPoint> sweep;
  std::unique_ptr<TelemetrySink> sink;
  for (std::size_t tenants : {1, 4, 8, 16, 32, 48}) {
    sink = std::make_unique<TelemetrySink>();
    const SweepPoint point = run_fleet_size(scenario, tenants, &sink->registry);
    std::cout << "tenants " << point.tenants << ": "
              << util::fmt_f(point.throughput, 1) << " sessions/s, p50 "
              << util::fmt_f(point.p50_latency_ms, 1) << " ms, p99 "
              << util::fmt_f(point.p99_latency_ms, 1)
              << " ms, cache hit rate "
              << util::fmt_f(point.cache_hit_rate, 3) << " ("
              << point.analyses_run << " analyses, " << point.warm_starts
              << " warm)\n";
    sweep.push_back(point);
  }

  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_service: cannot open " << out_path << "\n";
      return 1;
    }
    emit_json(out, sweep, scenario);
    std::cerr << "bench_service: wrote " << out_path << "\n";
  } else {
    emit_json(std::cout, sweep, scenario);
  }
  if (!dump_telemetry(dump, *sink)) return 1;
  return 0;
}

}  // namespace
}  // namespace aegis::bench

int main(int argc, char** argv) { return aegis::bench::run(argc, argv); }
