// Fig. 9c: mutual information I(X; X') between the clean leakage trace X
// and the noised trace X' as the injected noise grows (epsilon shrinks).
// By the data-processing inequality, I(X'; Y) <= I(X; X'), so this bounds
// EVERY attack model — the paper's argument for generality.
#include "attack/dataset.hpp"
#include "bench_common.hpp"
#include "dp/mechanism.hpp"
#include "trace/mutual_information.hpp"
#include "util/stats.hpp"
#include "workload/website.hpp"

using namespace aegis;

// aegis-rng: stream(fig9c-mutual-information-noise-main)
int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto events = bench::attack_events(db.model());
  const std::size_t slices = bench::scaled(240, scale, 120);
  const std::size_t runs_per_site = bench::scaled(6, scale, 4);
  const std::size_t sites = bench::scaled(10, scale, 6);

  // Clean per-event series across sites and visits, concatenated.
  attack::CollectionConfig config;
  config.event_ids = events;
  std::vector<std::vector<double>> clean(events.size());
  util::Rng rng(0x9CULL);
  for (std::size_t s = 0; s < sites; ++s) {
    const workload::WebsiteWorkload site(s, slices);
    for (std::size_t r = 0; r < runs_per_site; ++r) {
      const trace::Trace t = attack::collect_one(db, site, config, rng.next_u64());
      for (std::size_t e = 0; e < events.size(); ++e) {
        const auto series = t.event_series(e);
        clean[e].insert(clean[e].end(), series.begin(), series.end());
      }
    }
  }

  bench::print_header("Fig. 9c — I(X; X') between clean and noised traces");
  util::Table table({"mechanism", "epsilon", "I(X;X') gaussian (bits)",
                     "I(X;X') histogram (bits)"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (int p = 3; p >= -3; --p) {
      dp::MechanismConfig mech_config;
      mech_config.kind = kind;
      mech_config.epsilon = std::pow(2.0, p);
      mech_config.seed = 0x9C1ULL + static_cast<std::uint64_t>(p + 16);
      double mi_gauss = 0.0, mi_hist = 0.0;
      for (std::size_t e = 0; e < events.size(); ++e) {
        // Normalize, then noise the series exactly as the obfuscator would
        // (non-negative injection, clipped at 6 sigma).
        std::vector<double> x = clean[e];
        util::standardize(x);
        const auto mech = dp::make_mechanism(mech_config);
        std::vector<double> noised = x;
        for (double& v : noised) {
          const double noise = mech->noisy_value(v) - v;
          v += std::clamp(noise, 0.0, 6.0);
        }
        mi_gauss += trace::gaussian_mi_bits(x, noised);
        mi_hist += trace::histogram_mi_bits(x, noised);
      }
      table.add_row({std::string(dp::to_string(kind)), "2^" + std::to_string(p),
                     util::fmt_f(mi_gauss / events.size(), 3),
                     util::fmt_f(mi_hist / events.size(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "paper shape: I(X;X') decreases monotonically as epsilon "
               "shrinks (more noise), bounding any attack's achievable "
               "I(X';Y)\n";
  return 0;
}
