// Hot-path microbench: tracks the batched (structure-of-arrays) PMU engine
// against the retained reference implementation, plus the allocation-free
// GadgetRunner execute_once and a profiler-style full-database sweep.
//
// Emits machine-readable JSON (BENCH_hotpath.json) so perf regressions are
// diffable across commits:
//   bench_hot_path [output.json]     (stdout when no path is given)
// AEGIS_SCALE scales iteration counts (default sized for ~seconds).
//
// Methodology: each timed section runs `reps` times and reports the
// fastest repetition (min-of-N), the standard way to strip scheduler and
// frequency noise from a single-threaded microbench.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pmu/counter_file.hpp"
#include "pmu/event_database.hpp"
#include "pmu/simd_dispatch.hpp"
#include "sim/gadget_runner.hpp"
#include "telemetry/registry.hpp"

namespace aegis::bench {
namespace {

using pmu::AccumulateEngine;
using pmu::CounterRegisterFile;
namespace simd = pmu::simd;

double g_sink = 0.0;  // defeats dead-code elimination across timed loops

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Fastest-of-`reps` wall time of `body()`, in seconds.
template <typename Body>
double min_of(int reps, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

pmu::ExecutionStats gadget_like_stats() {
  pmu::ExecutionStats stats;
  for (std::size_t i = 0; i < stats.class_counts.size(); ++i) {
    stats.class_counts.at_index(i) = 8.0 + static_cast<double>(i);
  }
  stats.uops = 900.0;
  stats.l1_misses = 6.0;
  stats.llc_misses = 1.0;
  stats.l1_writes = 30.0;
  stats.branch_mispredicts = 2.0;
  stats.mem_reads = 180.0;
  stats.mem_writes = 70.0;
  stats.interrupts = 0.0;
  stats.cycles = 3200.0;
  return stats;
}

/// ns per accumulate() call with `ids` programmed, for one engine.
double accumulate_ns(const pmu::EventDatabase& db,
                     const std::vector<std::uint32_t>& ids,
                     AccumulateEngine engine, int iters, int reps) {
  CounterRegisterFile counters(db, 42);
  counters.set_engine(engine);
  counters.program(ids);
  const pmu::ExecutionStats stats = gadget_like_stats();
  counters.tick(stats);  // touch everything once before timing
  const double secs = min_of(reps, [&] {
    for (int i = 0; i < iters; ++i) counters.accumulate(stats);
  });
  g_sink += counters.read_raw(ids.front());
  return secs / iters * 1e9;
}

/// ns per steady-state execute_once() call (variant cache warm).
double execute_once_ns(const pmu::EventDatabase& db,
                       const isa::IsaSpecification& spec, int iters,
                       int reps) {
  sim::GadgetRunner runner(db, spec, 21);
  runner.program(attack_events(db.model()));
  std::uint32_t plain = 0, memory = 0;
  bool have_plain = false, have_memory = false;
  for (const auto& v : spec.variants()) {
    if (!v.legal()) continue;
    if (!have_plain && !v.has_memory_operand) plain = v.uid, have_plain = true;
    if (!have_memory && v.has_memory_operand) memory = v.uid, have_memory = true;
    if (have_plain && have_memory) break;
  }
  const std::vector<std::uint32_t> gadget = {plain, memory};
  for (int i = 0; i < 8; ++i) (void)runner.execute_once(gadget, 32.0);  // warm
  const double secs = min_of(reps, [&] {
    for (int i = 0; i < iters; ++i) {
      g_sink += runner.execute_once(gadget, 32.0)[0];
    }
  });
  return secs / iters * 1e9;
}

/// Profiler-style sweep: program every event in groups of 4, tick a few
/// slices, read all counts. Returns events/second.
double sweep_events_per_sec(const pmu::EventDatabase& db,
                            AccumulateEngine engine, int slices, int reps) {
  const pmu::ExecutionStats stats = gadget_like_stats();
  const double secs = min_of(reps, [&] {
    CounterRegisterFile counters(db, 42);
    counters.set_engine(engine);
    std::vector<std::uint32_t> group;
    for (std::uint32_t id = 0; id < db.size();) {
      group.clear();
      for (std::size_t k = 0;
           k < pmu::EventDatabase::kNumCounters && id < db.size(); ++k, ++id) {
        group.push_back(id);
      }
      counters.program(group);
      for (int s = 0; s < slices; ++s) counters.tick(stats);
      for (double v : counters.read_all()) g_sink += v;
    }
  });
  return static_cast<double>(db.size()) / secs;
}

void emit(std::ostream& out, isa::CpuModel model, double acc4_ref,
          double acc4_scalar, double acc4_bat, double sweep_ref,
          double sweep_scalar, double sweep_bat, double exec_ns,
          double exec_off_ns, double recorder_overhead_pct,
          double sweep_eps_ref, double sweep_eps_bat) {
  // The engine/cpu/backend fields record WHICH kernel and WHICH event
  // database produced the batched numbers, so a regression diff across
  // machines (or an AEGIS_FORCE_SCALAR / AEGIS_CPU run) is attributable
  // instead of mysterious — bench_compare.py fails on a mismatch.
  const simd::CpuFeatures cpu = simd::detect_cpu_features();
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"hotpath\",\n"
      "  \"cpu_model\": \"%s\",\n"
      "  \"backend\": \"%s\",\n"
      "  \"engine\": \"%s\",\n"
      "  \"cpu\": {\n"
      "    \"avx2\": %s,\n"
      "    \"avx512\": %s,\n"
      "    \"force_scalar\": %s\n"
      "  },\n"
      "  \"accumulate_4_events\": {\n"
      "    \"reference_ns\": %.2f,\n"
      "    \"scalar_ns\": %.2f,\n"
      "    \"batched_ns\": %.2f,\n"
      "    \"speedup\": %.2f\n"
      "  },\n"
      "  \"accumulate_sweep_1903_events\": {\n"
      "    \"reference_ns\": %.2f,\n"
      "    \"scalar_ns\": %.2f,\n"
      "    \"batched_ns\": %.2f,\n"
      "    \"speedup\": %.2f\n"
      "  },\n"
      "  \"execute_once\": {\n"
      "    \"steady_state_ns\": %.2f\n"
      "  },\n"
      "  \"flight_recorder\": {\n"
      "    \"recorder_on_ns\": %.2f,\n"
      "    \"recorder_off_ns\": %.2f,\n"
      "    \"recorder_overhead_pct\": %.2f\n"
      "  },\n"
      "  \"profiler_sweep\": {\n"
      "    \"reference_events_per_sec\": %.0f,\n"
      "    \"batched_events_per_sec\": %.0f,\n"
      "    \"speedup\": %.2f\n"
      "  }\n"
      "}\n",
      std::string(isa::to_token(model)).c_str(),
      std::string(pmu::backend::backend_id(model)).c_str(),
      simd::to_string(simd::best_isa()), cpu.avx2 ? "true" : "false",
      cpu.avx512 ? "true" : "false",
      simd::force_scalar_env() ? "true" : "false", acc4_ref, acc4_scalar,
      acc4_bat, acc4_ref / acc4_bat, sweep_ref, sweep_scalar, sweep_bat,
      sweep_ref / sweep_bat, exec_ns, exec_ns, exec_off_ns,
      recorder_overhead_pct, sweep_eps_ref, sweep_eps_bat,
      sweep_eps_bat / sweep_eps_ref);
  out << buf;
}

int run(int argc, char** argv) {
  // argv[1] is the JSON output path (not a scale factor, unlike the table
  // benches), so only AEGIS_SCALE adjusts iteration counts here.
  const double scale = scale_from_args(1, argv);
  const isa::CpuModel model = cpu_from_env();
  const auto& db = pmu::backend::backend_for(model).database();
  const auto spec = isa::IsaSpecification::generate(model);

  const int iters = static_cast<int>(scaled(20000, scale, 1000));
  const int sweep_iters = static_cast<int>(scaled(400, scale, 50));
  const int reps = 5;

  const std::vector<std::uint32_t> four = attack_events(db.model());
  std::vector<std::uint32_t> all_ids;
  for (std::uint32_t id = 0; id < db.size(); ++id) all_ids.push_back(id);

  std::cerr << "bench_hot_path: engine " << simd::to_string(simd::best_isa())
            << " (avx2=" << simd::detect_cpu_features().avx2
            << " avx512=" << simd::detect_cpu_features().avx512
            << " force_scalar=" << simd::force_scalar_env() << ")\n";

  std::cerr << "bench_hot_path: accumulate (4 events)...\n";
  const double acc4_ref =
      accumulate_ns(db, four, AccumulateEngine::kReference, iters, reps);
  const double acc4_scalar =
      accumulate_ns(db, four, AccumulateEngine::kScalar, iters, reps);
  const double acc4_bat =
      accumulate_ns(db, four, AccumulateEngine::kBatched, iters, reps);

  std::cerr << "bench_hot_path: accumulate (1903-event sweep mode)...\n";
  const double sweep_ref = accumulate_ns(
      db, all_ids, AccumulateEngine::kReference, sweep_iters, reps);
  const double sweep_scalar = accumulate_ns(
      db, all_ids, AccumulateEngine::kScalar, sweep_iters, reps);
  const double sweep_bat =
      accumulate_ns(db, all_ids, AccumulateEngine::kBatched, sweep_iters, reps);

  // execute_once is measured twice: with the global flight recorder OFF and
  // ON (the GadgetRunner records a 1-in-8 sampled kHotExec wide event).
  // recorder_overhead_pct is the always-on cost on the hottest loop in the
  // codebase; scripts/bench_compare.py --hotpath gates it at <= 2%.
  std::cerr << "bench_hot_path: execute_once steady state (recorder off)...\n";
  telemetry::FlightRecorder& recorder = telemetry::Registry::global().recorder();
  recorder.set_enabled(false);
  const double exec_off_ns = execute_once_ns(db, spec, iters / 4, reps);
  std::cerr << "bench_hot_path: execute_once steady state (recorder on)...\n";
  recorder.set_enabled(true);
  const double exec_ns = execute_once_ns(db, spec, iters / 4, reps);
  const double recorder_overhead_pct =
      exec_off_ns > 0.0 ? (exec_ns - exec_off_ns) / exec_off_ns * 100.0 : 0.0;

  std::cerr << "bench_hot_path: profiler sweep over " << db.size()
            << " events...\n";
  const double eps_ref =
      sweep_events_per_sec(db, AccumulateEngine::kReference, 8, reps);
  const double eps_bat =
      sweep_events_per_sec(db, AccumulateEngine::kBatched, 8, reps);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "bench_hot_path: cannot open " << argv[1] << "\n";
      return 1;
    }
    emit(out, model, acc4_ref, acc4_scalar, acc4_bat, sweep_ref, sweep_scalar,
         sweep_bat, exec_ns, exec_off_ns, recorder_overhead_pct, eps_ref,
         eps_bat);
    std::cerr << "bench_hot_path: wrote " << argv[1] << "\n";
  } else {
    emit(std::cout, model, acc4_ref, acc4_scalar, acc4_bat, sweep_ref,
         sweep_scalar, sweep_bat, exec_ns, exec_off_ns, recorder_overhead_pct,
         eps_ref, eps_bat);
  }
  if (g_sink == -1.0) std::cerr << "";  // keep the sink observable
  return 0;
}

}  // namespace
}  // namespace aegis::bench

int main(int argc, char** argv) { return aegis::bench::run(argc, argv); }
