// Fig. 9a: attack accuracy vs privacy budget epsilon for the Laplace and d*
// mechanisms, attacker trained on CLEAN template traces (the realistic
// case).
// Paper shape: all three attacks drop from > 90 % to ~2 % (random guess);
// larger epsilon -> higher accuracy; at equal epsilon d* gives stronger
// protection, especially for epsilon >= 2^0; WFA/KSA are more noise-
// sensitive than MEA.
#include "bench_common.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto slices = bench::scaled(200, scale, 120);

  // --- offline Aegis analysis (shared by all mechanisms) ---
  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(45, scale, 12);
  wfa_scale.traces_per_site = bench::scaled(16, scale, 10);
  wfa_scale.epochs = bench::scaled(25, scale, 14);
  wfa_scale.slices = slices;
  auto wfa_secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(wfa_secrets, scale);
  const auto& db = setup.aegis.database();
  const auto events = bench::attack_events(db.model());
  std::cout << "offline: " << setup.result.warmup.surviving.size()
            << " vulnerable events, cover of "
            << setup.result.cover.gadgets.size() << " gadgets\n";

  // --- train the three attacks on clean template traces ---
  attack::ClassificationAttack wfa(db, attack::make_wfa_config(events, wfa_scale));
  (void)wfa.train(wfa_secrets);

  attack::KsaScale ksa_scale;
  ksa_scale.traces_per_count = bench::scaled(80, scale, 40);
  ksa_scale.epochs = bench::scaled(25, scale, 14);
  ksa_scale.slices = slices;
  auto ksa_secrets = attack::make_ksa_secrets(ksa_scale);
  attack::ClassificationAttack ksa(db, attack::make_ksa_config(events, ksa_scale));
  (void)ksa.train(ksa_secrets);

  attack::MeaConfig mea_config;
  mea_config.event_ids = events;
  mea_config.scale.models = bench::scaled(12, scale, 8);
  mea_config.scale.traces_per_model = bench::scaled(8, scale, 6);
  mea_config.scale.epochs = bench::scaled(14, scale, 10);
  mea_config.scale.slices = slices;
  attack::MeaAttack mea(db, mea_config);
  (void)mea.train();

  const std::size_t wfa_visits = bench::scaled(2, scale);
  const std::size_t ksa_visits = bench::scaled(4, scale);
  const std::size_t mea_runs = bench::scaled(1, scale);
  std::cout << "clean accuracy: WFA "
            << util::fmt_pct(wfa.exploit(wfa_secrets, wfa_visits, 700)) << ", KSA "
            << util::fmt_pct(ksa.exploit(ksa_secrets, ksa_visits, 701)) << ", MEA "
            << util::fmt_pct(mea.exploit(mea_runs, 702))
            << "   (paper: > 90 % each; random guess: WFA "
            << util::fmt_pct(1.0 / static_cast<double>(wfa_scale.sites))
            << ", KSA 10.00 %)\n";

  bench::print_header("Fig. 9a — attack accuracy vs epsilon (clean-trained attacker)");
  util::Table table({"mechanism", "epsilon", "WFA acc", "KSA acc", "MEA acc"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (int p = -3; p <= 3; ++p) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = std::pow(2.0, p);
      auto obf = setup.aegis.make_obfuscator(setup.result, wfa_secrets, mech);
      auto factory = [&obf] { return obf->session(); };
      const double a_wfa = wfa.exploit(wfa_secrets, wfa_visits, 710 + p, factory);
      const double a_ksa = ksa.exploit(ksa_secrets, ksa_visits, 720 + p, factory);
      const double a_mea = mea.exploit(mea_runs, 730 + p, factory);
      table.add_row({std::string(dp::to_string(kind)),
                     "2^" + std::to_string(p), util::fmt_pct(a_wfa),
                     util::fmt_pct(a_ksa), util::fmt_pct(a_mea)});
    }
  }
  table.print(std::cout);
  std::cout << "paper shape: accuracy falls to ~2 % (random) at small epsilon;"
               " d* stronger than Laplace at the same epsilon (esp. >= 2^0);"
               " WFA/KSA fall faster than MEA\n";
  return 0;
}
