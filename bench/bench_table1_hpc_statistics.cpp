// Table I: statistics of HPC events in various processors.
// Paper values: 6166 / 6172 / 1903 / 1903 events; 14 differing events
// within the Intel family, 0 within the AMD family.
#include <set>

#include "bench_common.hpp"
#include "pmu/event_database.hpp"

using namespace aegis;

namespace {

std::size_t differing_events(const pmu::EventDatabase& a,
                             const pmu::EventDatabase& b) {
  std::set<std::string> names_a, names_b;
  for (const auto& e : a.events()) names_a.insert(e.name);
  for (const auto& e : b.events()) names_b.insert(e.name);
  std::size_t differing = 0;
  for (const auto& n : names_a) {
    if (!names_b.contains(n)) ++differing;
  }
  for (const auto& n : names_b) {
    if (!names_a.contains(n)) ++differing;
  }
  return differing;
}

}  // namespace

int main() {
  bench::print_header("Table I: statistics of HPC events in various processors");

  const auto& e5_1650 = pmu::backend::backend_for(isa::CpuModel::kIntelXeonE5_1650).database();
  const auto& e5_4617 = pmu::backend::backend_for(isa::CpuModel::kIntelXeonE5_4617).database();
  const auto& epyc7252 = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto& epyc7313 = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7313P).database();

  util::Table table({"HPC Statistics", "Intel Xeon E5-1650", "Intel Xeon E5-4617",
                     "AMD EPYC 7252", "AMD EPYC 7313P"});
  table.add_row({"# of HPC Events", std::to_string(e5_1650.size()),
                 std::to_string(e5_4617.size()), std::to_string(epyc7252.size()),
                 std::to_string(epyc7313.size())});
  table.add_row({"# of Different Events", "/",
                 std::to_string(differing_events(e5_1650, e5_4617)), "/",
                 std::to_string(differing_events(epyc7252, epyc7313))});
  table.print(std::cout);

  std::cout << "\npaper: 6166 / 6172 / 1903 / 1903 events; 14 differing "
               "(Intel family), 0 (AMD family)\n";
  return 0;
}
