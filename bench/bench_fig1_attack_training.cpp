// Fig. 1: training curves of the three HPC side-channel attacks, plus
// victim-VM exploitation accuracy.
// Paper: WFA 98.72 % val / 98.57 % victim; KSA 95.21 / 95.48 %;
//        MEA 91.8 / 90.5 % (matched layers).
#include "bench_common.hpp"

using namespace aegis;

namespace {

void print_history(const std::string& label,
                   const std::vector<ml::EpochStats>& history) {
  util::Table table({"epoch", "train loss", "train acc", "val acc"});
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i % 3 != 0 && i + 1 != history.size()) continue;  // thin the curve
    table.add_row({std::to_string(history[i].epoch),
                   util::fmt_f(history[i].train_loss, 4),
                   util::fmt_pct(history[i].train_accuracy),
                   util::fmt_pct(history[i].val_accuracy)});
  }
  bench::print_header(label);
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto events = bench::attack_events(db.model());

  // --- Fig. 1a: website fingerprinting (45 sites) ---
  attack::WfaScale wfa_scale;
  wfa_scale.traces_per_site = bench::scaled(20, scale, 10);
  wfa_scale.epochs = bench::scaled(30, scale, 15);
  wfa_scale.slices = bench::scaled(240, scale, 120);
  const auto wfa_secrets = attack::make_wfa_secrets(wfa_scale);
  attack::ClassificationAttack wfa(db, attack::make_wfa_config(events, wfa_scale));
  print_history("Fig. 1a — WFA training (45 websites)", wfa.train(wfa_secrets));
  const double wfa_victim = wfa.exploit(wfa_secrets, bench::scaled(3, scale), 901);
  std::cout << "victim-VM attack accuracy: " << util::fmt_pct(wfa_victim)
            << "   (paper: 98.72 % val, 98.57 % victim)\n";

  // --- Fig. 1b: keystroke sniffing (K in [0, 9]) ---
  attack::KsaScale ksa_scale;
  ksa_scale.traces_per_count = bench::scaled(90, scale, 40);
  ksa_scale.epochs = bench::scaled(30, scale, 15);
  ksa_scale.slices = bench::scaled(240, scale, 120);
  const auto ksa_secrets = attack::make_ksa_secrets(ksa_scale);
  attack::ClassificationAttack ksa(db, attack::make_ksa_config(events, ksa_scale));
  print_history("Fig. 1b — KSA training (10 keystroke counts)",
                ksa.train(ksa_secrets));
  const double ksa_victim = ksa.exploit(ksa_secrets, bench::scaled(6, scale), 902);
  std::cout << "victim-VM attack accuracy: " << util::fmt_pct(ksa_victim)
            << "   (paper: 95.21 % val, 95.48 % victim)\n";

  // --- Fig. 1c: model extraction (30 DNN architectures) ---
  attack::MeaConfig mea_config;
  mea_config.event_ids = events;
  mea_config.scale.traces_per_model = bench::scaled(10, scale, 6);
  mea_config.scale.epochs = bench::scaled(16, scale, 10);
  mea_config.scale.slices = bench::scaled(240, scale, 160);
  attack::MeaAttack mea(db, mea_config);
  print_history("Fig. 1c — MEA frame-classifier training (30 DNN models)",
                mea.train());
  const double mea_victim = mea.exploit(bench::scaled(2, scale), 903);
  std::cout << "victim-VM matched-layers accuracy: " << util::fmt_pct(mea_victim)
            << "   (paper: 91.8 % val, 90.5 % victim)\n";
  return 0;
}
