// Fig. 9b: the stronger attacker who knows the defense (mechanism + epsilon)
// and trains his model on NOISY template traces.
// Paper shape: d* still defeats these adaptive attacks; Laplace needs a
// smaller epsilon (the paper sweeps down to 2^-8) to suppress them.
#include "bench_common.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto slices = bench::scaled(180, scale, 100);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(16, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(16, scale, 10);
  wfa_scale.epochs = bench::scaled(22, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();
  const auto events = bench::attack_events(db.model());
  const std::size_t visits = bench::scaled(2, scale);

  bench::print_header(
      "Fig. 9b — adaptive attacker (model trained on noisy traces), WFA");
  util::Table table({"mechanism", "epsilon", "attack acc"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (int p : {-8, -5, -2, 0, 3}) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = std::pow(2.0, p);
      auto obf = setup.aegis.make_obfuscator(setup.result, secrets, mech);
      auto factory = [&obf] { return obf->session(); };
      // The adaptive attacker collects his training set under the same
      // defense he will face at exploitation time.
      attack::ClassificationAttack attack(
          db, attack::make_wfa_config(events, wfa_scale, 0x9B00 + p));
      (void)attack.train(secrets, factory);
      const double acc = attack.exploit(secrets, visits, 800 + p, factory);
      table.add_row({std::string(dp::to_string(kind)), "2^" + std::to_string(p),
                     util::fmt_pct(acc)});
    }
  }
  table.print(std::cout);
  std::cout << "random guess: "
            << util::fmt_pct(1.0 / static_cast<double>(wfa_scale.sites))
            << ". paper shape: noise-aware training recovers some accuracy; "
               "d* still suppresses it, Laplace needs smaller epsilon\n";
  return 0;
}
