// Section IX-A "Constant HPC output": padding every slice of the protected
// event up to the peak value p hides the signal but injects vastly more
// noise than the Laplace mechanism.
// Paper: obfuscating DATA_CACHE_REFILLS_FROM_SYSTEM while loading
// www.youtube.com costs 595,371,616 injected counts for constant output vs
// 33,090,214 for Laplace eps=2^0 — about 18x.
#include "bench_common.hpp"
#include "obf/obfuscator.hpp"

using namespace aegis;

// aegis-rng: stream(disc-constant-output-main)
int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(240, scale, 120);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(8, scale, 6);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();

  // The paper's example: youtube.com (site 1 in our Alexa ordering).
  std::vector<std::unique_ptr<workload::Workload>> youtube;
  youtube.push_back(std::make_unique<workload::WebsiteWorkload>(1, slices));
  const std::size_t runs = bench::scaled(10, scale, 6);

  const auto reference_cal = obf::calibrate_events(
      db, {setup.result.ranking.front().event_id}, secrets, 2, 0xC0157ULL);
  const double p_norm = reference_cal.front().peak / reference_cal.front().stddev;

  auto injected_counts = [&](dp::MechanismConfig mech) {
    auto obf = setup.aegis.make_obfuscator(setup.result, youtube, mech,
                                           core::ObfuscatorBuildOptions{}, 77);
    util::Rng rng(0xC0'57ULL);
    for (std::size_t r = 0; r < runs; ++r) {
      sim::VirtualMachine vm(sim::VmConfig{}, rng.next_u64());
      auto source = youtube[0]->visit(rng.next_u64());
      auto agent = obf->session();
      for (std::size_t t = 0; t < slices; ++t) {
        agent(vm, t);
        for (auto& b : source(t)) vm.submit(std::move(b));
        (void)vm.run_slice();
      }
    }
    return obf->total_injected_reference_counts();
  };

  dp::MechanismConfig laplace;
  laplace.kind = dp::MechanismKind::kLaplace;
  laplace.epsilon = 1.0;
  const double laplace_counts = injected_counts(laplace);

  dp::MechanismConfig constant;
  constant.kind = dp::MechanismKind::kConstantOutput;
  constant.constant_level = p_norm;  // pad to the peak p
  const double constant_counts = injected_counts(constant);

  bench::print_header(
      "Section IX-A — constant HPC output vs Laplace (youtube.com)");
  util::Table table({"defense", "injected reference-event counts", "ratio"});
  table.add_row({"Laplace eps=2^0",
                 util::fmt_group(static_cast<long long>(laplace_counts)), "1.00x"});
  table.add_row({"Constant output (pad to p)",
                 util::fmt_group(static_cast<long long>(constant_counts)),
                 util::fmt_f(constant_counts / std::max(laplace_counts, 1.0), 2) +
                     "x"});
  table.print(std::cout);
  std::cout << "paper: 595,371,616 vs 33,090,214 counts — constant output is "
               "an ~18x overkill defense\n";
  return 0;
}
