// Fig. 10: defense efficiency — application latency overhead (upper) and
// VM CPU usage (lower) vs epsilon, for both DP mechanisms, on the two
// heavyweight applications (website loading, DNN inference).
// Paper: at the chosen budgets (Laplace eps=2^0, d* eps=2^3) the execution
// time rises 3.18 % / 4.36 % (WFA / MEA, Laplace) and 3.94 % / 4.95 % (d*),
// with CPU usage penalties of ~7-9 %.
#include "bench_common.hpp"
#include "workload/dnn.hpp"
#include "workload/website.hpp"

using namespace aegis;

namespace {

struct RunCost {
  double completion_slices = 0.0;  // wall time to finish the application
  double cpu_usage = 0.0;          // busy fraction seen by the host's `top`
};

/// Runs one application execution to completion, with an optional in-guest
/// defense agent, on a vCPU whose slice budget makes the workload's peak
/// phases contend for the core (as a busy guest does).
RunCost run_once(const workload::Workload& app, const sim::SliceAgent& agent,
                 std::uint64_t seed, double slice_budget) {
  sim::VmConfig config;
  config.slice_budget_cycles = slice_budget;
  sim::VirtualMachine vm(config, seed);
  auto source = app.visit(seed);
  const std::size_t window = app.trace_slices();
  std::size_t t = 0;
  for (; t < window; ++t) {
    if (agent) agent(vm, t);
    for (auto& b : source(t)) vm.submit(std::move(b));
    (void)vm.run_slice();
  }
  // The application (and the noise interleaved into its execution flow)
  // finishes when the queued work drains.
  while (vm.pending() && t < window * 4) {
    (void)vm.run_slice();
    ++t;
  }
  return RunCost{static_cast<double>(t), vm.cpu_usage()};
}

// aegis-rng: stream(fig10-overhead-average-cost)
RunCost average_cost(const std::vector<std::unique_ptr<workload::Workload>>& apps,
                     obf::EventObfuscator* obf, std::size_t runs,
                     std::uint64_t seed, double slice_budget) {
  RunCost total;
  util::Rng rng(seed);
  std::size_t n = 0;
  for (const auto& app : apps) {
    for (std::size_t r = 0; r < runs; ++r) {
      const RunCost cost =
          run_once(*app, obf ? obf->session() : sim::SliceAgent{}, rng.next_u64(),
                   slice_budget);
      total.completion_slices += cost.completion_slices;
      total.cpu_usage += cost.cpu_usage;
      ++n;
    }
  }
  total.completion_slices /= static_cast<double>(n);
  total.cpu_usage /= static_cast<double>(n);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(200, scale, 120);
  const std::size_t runs = bench::scaled(3, scale, 2);

  // Offline analysis once, against the website secret set.
  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(12, scale, 8);
  wfa_scale.slices = slices;
  auto sites = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(sites, scale);

  std::vector<std::unique_ptr<workload::Workload>> web_apps, dnn_apps;
  for (std::size_t s = 0; s < bench::scaled(8, scale, 5); ++s) {
    web_apps.push_back(std::make_unique<workload::WebsiteWorkload>(s, slices));
  }
  for (std::size_t m = 0; m < bench::scaled(8, scale, 5); ++m) {
    dnn_apps.push_back(std::make_unique<workload::DnnWorkload>(m, slices));
  }

  // Per-guest slice budgets: sized so each application's peak phases
  // contend for the vCPU the way the paper's busy guests do.
  constexpr double kWebBudget = 70e3;
  constexpr double kDnnBudget = 40e3;
  const RunCost web_clean = average_cost(web_apps, nullptr, runs, 50, kWebBudget);
  const RunCost dnn_clean = average_cost(dnn_apps, nullptr, runs, 51, kDnnBudget);
  std::cout << "clean baseline: website load " << util::fmt_f(web_clean.completion_slices, 1)
            << " slices at " << util::fmt_pct(web_clean.cpu_usage)
            << " CPU; DNN inference " << util::fmt_f(dnn_clean.completion_slices, 1)
            << " slices at " << util::fmt_pct(dnn_clean.cpu_usage) << " CPU\n";

  bench::print_header("Fig. 10 — latency overhead and CPU usage vs epsilon");
  util::Table table({"mechanism", "epsilon", "web latency ovh", "web CPU usage ovh",
                     "dnn latency ovh", "dnn CPU usage ovh"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (int p = 3; p >= -2; --p) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = std::pow(2.0, p);
      auto obf = setup.aegis.make_obfuscator(setup.result, sites, mech);
      const RunCost web = average_cost(web_apps, obf.get(), runs, 60 + p, kWebBudget);
      const RunCost dnn = average_cost(dnn_apps, obf.get(), runs, 70 + p, kDnnBudget);
      const bool chosen = (kind == dp::MechanismKind::kLaplace && p == 0) ||
                          (kind == dp::MechanismKind::kDStar && p == 3);
      table.add_row(
          {std::string(dp::to_string(kind)) + (chosen ? " *" : ""),
           "2^" + std::to_string(p),
           util::fmt_pct(web.completion_slices / web_clean.completion_slices - 1.0),
           "+" + util::fmt_f((web.cpu_usage - web_clean.cpu_usage) * 100.0, 2) + " pts",
           util::fmt_pct(dnn.completion_slices / dnn_clean.completion_slices - 1.0),
           "+" + util::fmt_f((dnn.cpu_usage - dnn_clean.cpu_usage) * 100.0, 2) + " pts"});
    }
  }
  table.print(std::cout);
  std::cout << "* = the paper's selected operating points (Laplace eps=2^0, "
               "d* eps=2^3).\npaper: latency +3.18 %/+4.36 % (Laplace, "
               "web/DNN), +3.94 %/+4.95 % (d*); CPU +6.92 %/+7.87 % "
               "(Laplace), +7.64 %/+8.66 % (d*); smaller epsilon -> more "
               "overhead; d* costs more than Laplace at equal epsilon\n";
  return 0;
}
