// Section IX-B "Analysis with Multiple Tries": an attacker who can force
// the victim to repeat the SAME secret many times can average the traces
// and cancel zero-mean injected noise. The paper's countermeasure: attach a
// constant secret-dependent noise component, which survives averaging and
// keeps the secrets confounded.
#include "bench_common.hpp"
#include "obf/injector.hpp"

using namespace aegis;

namespace {

/// Averages N defended traces of the same secret into one trace.
// aegis-rng: stream(disc-multiple-tries-averaged-trace)
trace::Trace averaged_trace(const pmu::EventDatabase& db,
                            const workload::Workload& secret,
                            const attack::CollectionConfig& config,
                            std::size_t tries, util::Rng& rng,
                            const attack::AgentFactory& factory) {
  trace::Trace avg;
  for (std::size_t i = 0; i < tries; ++i) {
    const trace::Trace t = attack::collect_one(
        db, secret, config, rng.next_u64(), factory ? factory() : sim::SliceAgent{});
    if (avg.samples.empty()) {
      avg.samples.assign(t.slices(), std::vector<double>(t.events(), 0.0));
    }
    for (std::size_t s = 0; s < t.slices(); ++s) {
      for (std::size_t e = 0; e < t.events(); ++e) {
        avg.samples[s][e] += t.samples[s][e] / static_cast<double>(tries);
      }
    }
  }
  return avg;
}

}  // namespace

// aegis-rng: stream(disc-multiple-tries-main)
int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(180, scale, 100);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(10, scale, 6);
  wfa_scale.traces_per_site = bench::scaled(16, scale, 10);
  wfa_scale.epochs = bench::scaled(20, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();
  const auto events = bench::attack_events(db.model());

  attack::CollectionConfig collect;
  collect.event_ids = events;
  const std::size_t tries = bench::scaled(12, scale, 8);
  const std::size_t probes = bench::scaled(3, scale, 2);

  dp::MechanismConfig mech;
  mech.kind = dp::MechanismKind::kLaplace;
  mech.epsilon = 0.25;
  auto obf = setup.aegis.make_obfuscator(setup.result, secrets, mech);

  // The Section IX-B attacker knows the defense: he trains on defended
  // template traces (without the victim's secret-keyed constant, which he
  // cannot reproduce), then averages many victim traces of one secret.
  attack::ClassificationAttack wfa(db, attack::make_wfa_config(events, wfa_scale));
  (void)wfa.train(secrets, [&] { return obf->session(); });

  // A per-secret constant noise floor: the countermeasure. Realized as a
  // fixed extra repetition count of the cover segment per slice, keyed by
  // the secret actually running in the VM.
  auto defended_factory = [&](std::size_t secret_id, bool with_constant) {
    return [&, secret_id, with_constant]() -> sim::SliceAgent {
      sim::SliceAgent base = obf->session();
      if (!with_constant) return base;
      const double constant_norm =
          2.0 + 1.5 * static_cast<double>((secret_id * 2654435761u) % 5);
      auto injector = std::make_shared<obf::NoiseInjector>(
          setup.aegis.specification(), setup.result.cover,
          obf->config().unit_reps, obf->config().clip_norm);
      return [base, injector, constant_norm](sim::VirtualMachine& vm,
                                             std::size_t t) {
        base(vm, t);
        (void)injector->inject(vm, constant_norm);
      };
    };
  };

  auto averaged_accuracy = [&](bool with_constant) {
    util::Rng rng(0x517'B0ULL + (with_constant ? 1 : 0));
    std::size_t correct = 0, total = 0;
    for (std::size_t s = 0; s < secrets.size(); ++s) {
      for (std::size_t probe = 0; probe < probes; ++probe) {
        const trace::Trace avg =
            averaged_trace(db, *secrets[s], collect, tries, rng,
                           defended_factory(s, with_constant));
        if (wfa.predict(avg) == static_cast<int>(s)) ++correct;
        ++total;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };

  bench::print_header("Section IX-B — trace-averaging attacker (multiple tries)");
  const double single = wfa.exploit(secrets, probes, 1200,
                                    [&] { return obf->session(); });
  const double averaged = averaged_accuracy(false);
  const double averaged_vs_constant = averaged_accuracy(true);
  util::Table table({"attacker capability", "defense", "attack acc"});
  table.add_row({"single trace", "Laplace eps=2^-2", util::fmt_pct(single)});
  table.add_row({std::to_string(tries) + "-trace average", "Laplace eps=2^-2",
                 util::fmt_pct(averaged)});
  table.add_row({std::to_string(tries) + "-trace average",
                 "Laplace + secret-dependent constant",
                 util::fmt_pct(averaged_vs_constant)});
  table.print(std::cout);
  std::cout << "paper shape: averaging cancels zero-mean noise and restores "
               "accuracy; the constant secret-dependent component defeats "
               "the averaging attacker\n";
  return 0;
}
