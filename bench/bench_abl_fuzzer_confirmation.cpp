// Ablation: Event Fuzzer's result-confirmation machinery (Section VI-E).
// Runs the fuzz with the paper's lambda constraints and reordering enabled
// vs disabled, and counts how many candidate gadgets are false positives —
// artifacts of reset-sequence side effects (C5) or inherited dirty state
// (C6) — that only the confirmation stage rejects.
#include "bench_common.hpp"
#include "fuzzer/fuzzer.hpp"
#include "profiler/profiler.hpp"
#include "workload/website.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  // Fuzz a representative event subset: the attack events plus cache- and
  // branch-coupled ones (where C5/C6 artifacts concentrate).
  std::vector<std::uint32_t> events = bench::attack_events(db.model());
  events.push_back(*db.find("HW_CACHE_L1D:READ:MISS"));
  events.push_back(*db.find("HW_CACHE_LL:READ:MISS"));
  events.push_back(*db.find("RETIRED_BRANCH_MISPREDICTED"));
  events.push_back(*db.find("HW_CACHE_L1D:WRITE:ACCESS"));

  fuzzer::FuzzerConfig strict;
  strict.reset_sample = bench::scaled(48, scale, 32);
  strict.trigger_sample = bench::scaled(48, scale, 32);
  strict.repeats = 10;  // the paper's R

  fuzzer::FuzzerConfig lax = strict;
  lax.lambda1 = 1e9;             // disable the linearity constraint
  lax.lambda2 = 0.0;             // disable the cold/hot dominance constraint
  lax.reorder_tolerance = 1e-9;  // disable reordering cross-validation

  fuzzer::EventFuzzer strict_fuzzer(db, spec, strict);
  fuzzer::EventFuzzer lax_fuzzer(db, spec, lax);
  const fuzzer::FuzzResult with = strict_fuzzer.run(events);
  const fuzzer::FuzzResult without = lax_fuzzer.run(events);

  bench::print_header(
      "Ablation — confirmation (lambda1/lambda2 + reordering) on vs off");
  util::Table table({"event", "candidates", "kept w/o confirmation",
                     "kept with confirmation", "rejected confounders"});
  std::size_t total_rejected = 0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& strict_report = with.reports[e];
    const auto& lax_report = without.reports[e];
    const std::size_t rejected =
        lax_report.confirmed.size() >= strict_report.confirmed.size()
            ? lax_report.confirmed.size() - strict_report.confirmed.size()
            : 0;
    total_rejected += rejected;
    table.add_row({db.by_id(events[e]).name,
                   std::to_string(strict_report.candidates),
                   std::to_string(lax_report.confirmed.size()),
                   std::to_string(strict_report.confirmed.size()),
                   std::to_string(rejected)});
  }
  table.print(std::cout);
  std::cout << "confirmation rejects " << total_rejected
            << " gadget candidates whose count changes come from reset side "
               "effects or dirty state rather than the trigger — keeping "
               "them would corrupt the injected-noise calibration\n";
  return 0;
}
