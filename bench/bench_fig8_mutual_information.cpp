// Fig. 8: mutual information of each vulnerable HPC event for the three
// applications (website accesses, keystrokes, DNN inference), plus the
// Section VIII-A profiling cost model.
// Paper shape: sorted-MI curves for WFA/KSA drop much faster than for MEA
// (DNN execution leaks through more events).
#include "bench_common.hpp"
#include "profiler/profiler.hpp"
#include "workload/dnn.hpp"
#include "workload/keystroke.hpp"
#include "workload/website.hpp"

using namespace aegis;

namespace {

std::vector<profiler::EventRank> rank_application(
    const pmu::EventDatabase& db, const std::vector<std::uint32_t>& events,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    double scale) {
  profiler::ProfilerConfig config;
  config.ranking_runs_per_secret = bench::scaled(5, scale, 3);
  profiler::ApplicationProfiler profiler(db, config);
  return profiler.rank(secrets, events);
}

void print_curve(const std::string& label,
                 const std::vector<profiler::EventRank>& ranks,
                 const pmu::EventDatabase& db, double h_y) {
  bench::print_header(label);
  util::Table table({"rank", "event", "MI (bits)"});
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    // Print the curve at decreasing resolution (it is long).
    if (i > 8 && i % 16 != 0 && i + 1 != ranks.size()) continue;
    table.add_row({std::to_string(i), db.by_id(ranks[i].event_id).name,
                   util::fmt_f(ranks[i].mutual_information, 3)});
  }
  table.print(std::cout);
  // Curve-shape statistic: how many events retain > 50 % of H(Y).
  std::size_t strong = 0;
  for (const auto& r : ranks) {
    if (r.mutual_information > 0.5 * h_y) ++strong;
  }
  std::cout << "events with MI > H(Y)/2: " << strong << " of " << ranks.size()
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const std::size_t slices = bench::scaled(200, scale, 100);

  // Warm-up first: the ranked list is the survivor set (137 events).
  profiler::ProfilerConfig warm_config;
  warm_config.warmup_slices = bench::scaled(80, scale, 40);
  warm_config.warmup_repeats = 3;
  profiler::ApplicationProfiler warm(db, warm_config);
  const workload::WebsiteWorkload representative(0, warm_config.warmup_slices);
  const auto survivors = warm.warmup(representative).surviving;
  std::cout << "warm-up survivors: " << survivors.size()
            << " events (paper: 137)\n";

  // Secret sets per application (subsampled for speed; scale raises).
  std::vector<std::unique_ptr<workload::Workload>> wfa, ksa, mea;
  for (std::size_t s = 0; s < bench::scaled(10, scale, 6); ++s) {
    wfa.push_back(std::make_unique<workload::WebsiteWorkload>(s, slices));
  }
  for (std::size_t k = 0; k <= 9; ++k) {
    ksa.push_back(std::make_unique<workload::KeystrokeWorkload>(k, slices));
  }
  for (std::size_t m = 0; m < bench::scaled(8, scale, 5); ++m) {
    mea.push_back(std::make_unique<workload::DnnWorkload>(m, slices));
  }

  print_curve("Fig. 8a — MI per event, website accesses",
              rank_application(db, survivors, wfa, scale), db,
              std::log2(static_cast<double>(wfa.size())));
  print_curve("Fig. 8b — MI per event, keystrokes",
              rank_application(db, survivors, ksa, scale), db,
              std::log2(static_cast<double>(ksa.size())));
  print_curve("Fig. 8c — MI per event, DNN model executions",
              rank_application(db, survivors, mea, scale), db,
              std::log2(static_cast<double>(mea.size())));

  bench::print_header("Section VIII-A profiling cost model (paper timings)");
  util::Table cost({"step", "formula", "hours"});
  cost.add_row({"warm-up, Intel (M=6166)", "M*t_w*2/C",
                util::fmt_f(profiler::ApplicationProfiler::warmup_time_hours(
                                6166, 1.0, 4),
                            2)});
  cost.add_row({"warm-up, AMD (M=1903)", "M*t_w*2/C",
                util::fmt_f(profiler::ApplicationProfiler::warmup_time_hours(
                                1903, 1.0, 4),
                            2)});
  cost.add_row({"ranking, WFA (N=137,S=45)", "N*S*100*t_p/C",
                util::fmt_f(profiler::ApplicationProfiler::ranking_time_hours(
                                137, 45, 100, 1.0, 4),
                            2)});
  cost.add_row({"ranking, KSA (N=137,S=10)", "N*S*100*t_p/C",
                util::fmt_f(profiler::ApplicationProfiler::ranking_time_hours(
                                137, 10, 100, 1.0, 4),
                            2)});
  cost.add_row({"ranking, MEA (N=137,S=30)", "N*S*100*t_p/C",
                util::fmt_f(profiler::ApplicationProfiler::ranking_time_hours(
                                137, 30, 100, 1.0, 4),
                            2)});
  cost.print(std::cout);
  std::cout << "paper: 0.85 h / 0.26 h warm-up; 42.81 / 9.51 / 28.54 h ranking\n";
  return 0;
}
