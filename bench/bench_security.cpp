// Security-evaluation frontier driver (src/seceval).
//
// Runs the (attacker x defense x epsilon) matrix and emits the frontier
// artifact pair:
//
//   bench_security [--json FILE] [--report FILE]   full matrix (the nightly
//                                 frontier; committed as BENCH_security.json
//                                 and REPORT_security.md)
//   bench_security --smoke ...    the PR-CI subset (seceval::smoke_matrix).
//                                 Cell seeds derive from the cell SPEC, so
//                                 smoke values are bit-identical to the same
//                                 cells in the full matrix — the directional
//                                 gate (scripts/bench_compare.py --security)
//                                 diffs them against the committed baseline.
//
// The committed baseline is generated at AEGIS_SCALE=1; run the gate at the
// same scale. AEGIS_THREADS sets the cell-shard worker count (0 = hardware
// concurrency) and never changes the emitted bytes.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "seceval/seceval.hpp"

namespace aegis::bench {
namespace {

int run(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a file argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const double scale = []() {
    if (const char* env = std::getenv("AEGIS_SCALE")) {
      const double s = std::atof(env);
      if (s > 0) return s;
    }
    return 1.0;
  }();

  seceval::HarnessConfig config;
  config.cpu = pmu::backend::model_from_env(config.cpu);
  config.num_threads = threads_from_env();
  config.scale.sites = scaled(config.scale.sites, scale, 4);
  config.scale.traces_per_secret =
      scaled(config.scale.traces_per_secret, scale, 4);
  config.scale.slices = scaled(config.scale.slices, scale, 40);
  config.scale.epochs = scaled(config.scale.epochs, scale, 4);
  config.scale.visits_per_secret =
      scaled(config.scale.visits_per_secret, scale, 2);

  print_header(smoke ? "bench_security --smoke" : "bench_security");
  const std::vector<seceval::CellSpec> cells =
      smoke ? seceval::smoke_matrix() : seceval::full_matrix();
  std::cout << cells.size() << " cells, scale " << scale << "\n";

  const auto start = std::chrono::steady_clock::now();
  const seceval::SecurityHarness harness(config);
  const seceval::FrontierResult frontier = harness.run(cells);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (frontier.cells.size() != cells.size()) {
    std::cerr << "FAIL: expected " << cells.size() << " cells, got "
              << frontier.cells.size() << "\n";
    return 1;
  }
  for (const seceval::CellResult& cell : frontier.cells) {
    if (!(cell.attack_accuracy >= 0.0 && cell.attack_accuracy <= 1.0)) {
      std::cerr << "FAIL: accuracy out of range for "
                << seceval::to_string(cell.spec.attacker) << "/"
                << seceval::to_string(cell.spec.defense) << "\n";
      return 1;
    }
    if (cell.noise_draws == 0) {
      std::cerr << "FAIL: defense injected no noise for "
                << seceval::to_string(cell.spec.defense) << "\n";
      return 1;
    }
  }

  seceval::write_frontier_report(frontier, harness.config(), std::cout);
  std::cout << "\nwall time: " << wall << " s\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    seceval::write_frontier_json(frontier, harness.config(), out);
    std::cout << "wrote " << json_path << "\n";
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    seceval::write_frontier_report(frontier, harness.config(), out);
    std::cout << "wrote " << report_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace aegis::bench

int main(int argc, char** argv) { return aegis::bench::run(argc, argv); }
