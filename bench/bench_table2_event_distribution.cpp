// Table II: HPC event type distribution (H/S/HC/T/R/O) and the percentage
// of each type remaining after warm-up profiling.
// Paper (all events): Intel 0.39/0.31/1.00/36.15/7.75/54.40 %;
//                     AMD 1.26/1.00/3.26/87.17/5.20/2.11 %.
// Warm-up survivors: ~738 events (Intel), 137 (AMD).
#include "bench_common.hpp"
#include "profiler/profiler.hpp"
#include "workload/website.hpp"

using namespace aegis;

namespace {

void report_cpu(isa::CpuModel model, double scale) {
  const auto& db = pmu::backend::backend_for(model).database();
  profiler::ProfilerConfig config;
  config.warmup_slices = bench::scaled(100, scale, 40);
  config.warmup_repeats = 5;  // the paper's 5 repeated warm-up profilings
  profiler::ApplicationProfiler profiler(db, config);
  const workload::WebsiteWorkload app(0, config.warmup_slices);
  const profiler::WarmupReport report = profiler.warmup(app);

  bench::print_header(std::string("Table II — ") + std::string(isa::to_string(model)));
  util::Table table({"Type", "Events", "% of all", "Survive warm-up",
                     "% of type surviving"});
  for (std::size_t t = 0; t < pmu::kNumEventTypes; ++t) {
    const auto type = static_cast<pmu::EventType>(t);
    const double before = static_cast<double>(report.before_by_type[t]);
    const double after = static_cast<double>(report.after_by_type[t]);
    table.add_row({std::string(pmu::short_code(type)),
                   std::to_string(report.before_by_type[t]),
                   util::fmt_pct(before / static_cast<double>(db.size())),
                   std::to_string(report.after_by_type[t]),
                   before > 0 ? util::fmt_pct(after / before) : "-"});
  }
  table.print(std::cout);
  std::cout << "total surviving: " << report.surviving.size() << " of "
            << report.total_events << " ("
            << util::fmt_pct(static_cast<double>(report.surviving.size()) /
                             static_cast<double>(report.total_events))
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  report_cpu(isa::CpuModel::kIntelXeonE5_1650, scale);
  report_cpu(isa::CpuModel::kAmdEpyc7252, scale);
  std::cout << "\npaper: Intel H/S/HC/T/R/O = 0.39/0.31/1.00/36.15/7.75/54.40 %"
               " -> ~738 survive; AMD = 1.26/1.00/3.26/87.17/5.20/2.11 %"
               " -> 137 survive\n";
  return 0;
}
