// Fig. 11 (Section IX-A): the uniform-random-noise baseline. Random noise
// bounded by [0, f * p] (p = the peak HPC value) is swept; the paper shows
// that at the Laplace mechanism's noise volume random noise only reaches
// 32 % attack accuracy, and matching the DP defense (< 5 %) requires a
// bound of ~0.4 p — about 4.37x more injected noise than Laplace eps=2^0.
#include "bench_common.hpp"
#include "obf/obfuscator.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(200, scale, 120);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(16, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(16, scale, 10);
  wfa_scale.epochs = bench::scaled(22, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();
  const auto events = bench::attack_events(db.model());

  // A shift-robust attacker: trained on clean traces with strong feature
  // jitter, so that mere distribution shift (any small offset) does not
  // break it — the regime where the paper's random-vs-DP comparison is
  // meaningful.
  auto wfa_config = attack::make_wfa_config(events, wfa_scale);
  wfa_config.mlp.input_noise = 1.25;
  attack::ClassificationAttack wfa(db, wfa_config);
  (void)wfa.train(secrets);
  const std::size_t visits = bench::scaled(3, scale, 2);
  const double clean = wfa.exploit(secrets, visits, 1100);
  std::cout << "clean attack accuracy: " << util::fmt_pct(clean) << "\n";

  // Peak p of the reference series in sigma units (the obfuscator's
  // normalized scale), from calibration.
  const auto reference_cal = obf::calibrate_events(
      db, {setup.result.ranking.front().event_id}, secrets, 2, 0x9EA5ULL);
  const double p_norm = reference_cal.front().peak / reference_cal.front().stddev;

  // Laplace reference point (eps = 2^0), as marked in the paper's figure.
  dp::MechanismConfig laplace;
  laplace.kind = dp::MechanismKind::kLaplace;
  laplace.epsilon = 1.0;
  auto laplace_obf = setup.aegis.make_obfuscator(setup.result, secrets, laplace);
  const double laplace_acc =
      wfa.exploit(secrets, visits, 1101, [&] { return laplace_obf->session(); });
  const double laplace_noise = laplace_obf->total_injected_reference_counts();

  bench::print_header("Fig. 11 — attack accuracy under uniform random noise");
  util::Table table({"noise bound", "attack acc", "injected noise vs Laplace"});
  double matched_ratio = 0.0;
  for (double frac : {0.0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.4, 0.5}) {
    dp::MechanismConfig mech;
    mech.kind = dp::MechanismKind::kUniformRandom;
    mech.uniform_bound = frac * p_norm;
    auto obf = setup.aegis.make_obfuscator(setup.result, secrets, mech);
    const double acc =
        wfa.exploit(secrets, visits, 1102, [&] { return obf->session(); });
    const double ratio =
        obf->total_injected_reference_counts() / std::max(laplace_noise, 1.0);
    table.add_row({util::fmt_f(frac, 2) + " p", util::fmt_pct(acc),
                   util::fmt_f(ratio, 2) + "x"});
    if (acc <= laplace_acc + 0.02 && matched_ratio == 0.0) matched_ratio = ratio;
  }
  table.print(std::cout);
  std::cout << "Laplace eps=2^0 reference: accuracy " << util::fmt_pct(laplace_acc)
            << " at 1.00x noise\n";
  if (matched_ratio > 0.0) {
    std::cout << "random noise matching the DP defense needs ~"
              << util::fmt_f(matched_ratio, 2)
              << "x the Laplace noise volume (paper: 4.37x at bound 0.4 p)\n";
  } else {
    std::cout << "no swept bound matched the DP defense accuracy (paper "
                 "needed 0.4 p = 4.37x the Laplace noise)\n";
  }
  return 0;
}
