// Extension (paper Section X future work): "study the defense effect of
// noise gadgets with more instructions". Compares single-instruction
// reset/trigger sequences (the paper's implementation) against composed
// 2- and 3-instruction sequences on the four attack events: longer trigger
// sequences produce proportionally larger count disturbance per gadget
// execution, while composed resets (e.g. flush + fence) restore state more
// reliably for cache events.
#include "bench_common.hpp"
#include "sim/gadget_runner.hpp"
#include "util/stats.hpp"

using namespace aegis;

namespace {

/// Median per-execution delta of an instruction sequence over `repeats`
/// executions (reset prefix executed at low unroll, triggers at high).
double median_delta(sim::GadgetRunner& runner,
                    const std::vector<std::uint32_t>& resets,
                    const std::vector<std::uint32_t>& triggers,
                    std::size_t event_slot) {
  std::vector<double> deltas;
  for (int r = 0; r < 12; ++r) {
    double total = 0.0;
    total += runner.execute_once(resets, 2.0)[event_slot];
    total += runner.execute_once(triggers, 24.0)[event_slot];
    if (r > 0) deltas.push_back(total);  // skip the warm-up transient
  }
  return util::median(deltas);
}

}  // namespace

int main() {
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  auto find = [&](isa::InstructionClass iclass, bool mem) {
    for (const auto& v : spec.variants()) {
      if (v.legal() && v.iclass == iclass && v.has_memory_operand == mem) {
        return v.uid;
      }
    }
    throw std::runtime_error("variant not found");
  };
  const std::uint32_t nop = find(isa::InstructionClass::kNop, false);
  const std::uint32_t clflush = find(isa::InstructionClass::kCacheFlush, true);
  const std::uint32_t fence = find(isa::InstructionClass::kFence, false);
  const std::uint32_t load = find(isa::InstructionClass::kLoad, true);
  const std::uint32_t div = find(isa::InstructionClass::kIntDiv, false);
  const std::uint32_t mul = find(isa::InstructionClass::kIntMul, false);

  struct Variant {
    const char* name;
    std::vector<std::uint32_t> resets;
    std::vector<std::uint32_t> triggers;
  };
  const std::vector<Variant> variants = {
      {"1-instr (paper):  nop / div", {nop}, {div}},
      {"2-instr trigger:  nop / div+mul", {nop}, {div, mul}},
      {"3-instr trigger:  nop / div+mul+load", {nop}, {div, mul, load}},
      {"1-instr cache:    clflush / load", {clflush}, {load}},
      {"2-instr reset:    clflush+fence / load", {clflush, fence}, {load}},
      {"2+2 composed:     clflush+fence / load+div", {clflush, fence}, {load, div}},
  };

  bench::print_header(
      "Extension — multi-instruction gadget sequences (paper future work)");
  util::Table table({"gadget", "RETIRED_UOPS", "LS_DISPATCH",
                     "MAB_ALLOC", "DC_REFILLS"});
  for (const Variant& variant : variants) {
    sim::GadgetRunner runner(db, spec, 0x3A9);
    runner.program(bench::attack_events(db.model()));
    std::vector<std::string> row{variant.name};
    for (std::size_t e = 0; e < 4; ++e) {
      sim::GadgetRunner fresh(db, spec, 0x3A9 + e);
      fresh.program(bench::attack_events(db.model()));
      row.push_back(util::fmt_f(
          median_delta(fresh, variant.resets, variant.triggers, e), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "longer trigger sequences scale the per-execution disturbance "
               "(fewer repetitions needed for the same noise); composed "
               "resets make cache-event gadgets repeatable\n";
  return 0;
}
