// Ablation: the Event Obfuscator's noise-injection design choices.
//
//   * Noise rank (single stream vs per-gadget streams). Driving the whole
//     stacked segment with ONE noise draw makes the injected counts rank-1
//     in event space: with 4 monitored events, a 3-dimensional noise-free
//     subspace remains. A projection attacker estimates the noise direction
//     (the top principal component of the defended per-slice vectors, which
//     the injected noise dominates), removes it, and classifies the
//     residual. Independent per-gadget streams make the noise full-rank
//     over the monitored events, and the projection gains nothing.
//   * Clip bound B_u. A tight clip saturates at small epsilon, degrading
//     the mechanism into a near-deterministic offset that a noise-trained
//     attacker learns; a generous clip preserves the Laplace tails and the
//     d* drift that defeat temporal pooling (Fig. 9b).
#include "attack/dataset.hpp"
#include "bench_common.hpp"
#include "trace/pca.hpp"

using namespace aegis;

namespace {

/// Removes the component of every per-slice sample along `direction`.
trace::Trace project_out(const trace::Trace& t, const std::vector<double>& direction) {
  trace::Trace out = t;
  for (auto& row : out.samples) {
    double dot = 0.0;
    for (std::size_t e = 0; e < row.size(); ++e) dot += row[e] * direction[e];
    for (std::size_t e = 0; e < row.size(); ++e) row[e] -= dot * direction[e];
  }
  return out;
}

/// The projection attacker: estimates the dominant per-slice direction of
/// the defended traces (the injected-noise ray when the noise is rank-1),
/// projects it out of every trace, and trains/evaluates on the residual.
// aegis-rng: stream(abl-noise-design-projection-attack-accuracy)
double projection_attack_accuracy(
    const pmu::EventDatabase& db,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const attack::ClassificationAttackConfig& base_config,
    const attack::AgentFactory& factory, std::size_t test_visits,
    std::uint64_t seed) {
  // Collect defended training traces.
  const trace::TraceSet train_set =
      attack::collect_traces(db, secrets, base_config.collection, factory);

  // Estimate the noise direction from the pooled per-slice vectors.
  std::vector<std::vector<double>> rows;
  for (const auto& t : train_set.traces) {
    rows.insert(rows.end(), t.samples.begin(), t.samples.end());
  }
  trace::Pca pca;
  pca.fit(rows, 1);
  std::vector<double> direction = pca.components().front();

  // Featurize the projected residuals.
  ml::FeatureMatrix X;
  for (const auto& t : train_set.traces) {
    X.push_back(project_out(t, direction).window_features(base_config.feature_windows));
  }
  trace::Standardizer standardizer;
  standardizer.fit(X);
  standardizer.apply_all(X);
  ml::MlpClassifier model(X.front().size(),
                          static_cast<std::size_t>(train_set.num_classes),
                          base_config.mlp);
  (void)model.fit(X, train_set.labels, {}, {});

  // Exploit fresh defended victim runs through the same projection.
  util::Rng rng(seed);
  std::size_t correct = 0, total = 0;
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    for (std::size_t v = 0; v < test_visits; ++v) {
      const trace::Trace t = attack::collect_one(
          db, *secrets[s], base_config.collection, rng.next_u64(), factory());
      std::vector<double> f =
          project_out(t, direction).window_features(base_config.feature_windows);
      standardizer.apply(f);
      if (model.predict(f) == static_cast<int>(s)) ++correct;
      ++total;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(180, scale, 100);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(12, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(14, scale, 10);
  wfa_scale.epochs = bench::scaled(20, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();
  const auto events = bench::attack_events(db.model());
  const std::size_t visits = bench::scaled(2, scale);

  auto make_obf = [&](dp::MechanismKind kind, double epsilon, bool single_stream,
                      double clip_sigma) {
    dp::MechanismConfig mech;
    mech.kind = kind;
    mech.epsilon = epsilon;
    core::ObfuscatorBuildOptions options;
    options.single_noise_stream = single_stream;
    options.clip_sigma = clip_sigma;
    return setup.aegis.make_obfuscator(setup.result, secrets, mech, options);
  };

  bench::print_header(
      "Ablation 1 — subspace-projection attacker vs noise structure"
      " (eps = 2^-5)");
  util::Table streams({"mechanism", "streams", "projection-attack acc"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (bool single : {true, false}) {
      auto obf = make_obf(kind, 1.0 / 32.0, single, 30.0);
      const double acc = projection_attack_accuracy(
          db, secrets, attack::make_wfa_config(events, wfa_scale, 0xAB1),
          [&] { return obf->session(); }, visits, 0xAB2);
      streams.add_row({std::string(dp::to_string(kind)),
                       single ? "single (rank-1)" : "per-gadget (default)",
                       util::fmt_pct(acc)});
    }
  }
  streams.print(std::cout);
  std::cout << "the projection attacker strips the dominant noise direction: "
               "it defeats i.i.d. Laplace noise regardless of stream count "
               "(gadget effects correlate through their shared uop cost), and "
               "defeats single-stream d* (one stream concentrates the drift "
               "on one axis). Only d* WITH per-gadget streams — temporal "
               "correlation spread across the gadget-effect subspace — "
               "resists. Both design choices matter jointly.\n";

  bench::print_header("Ablation 2 — clip bound B_u (noise-trained attacker, eps = 2^-5)");
  util::Table clips({"mechanism", "B_u", "adaptive attack acc"});
  auto adaptive_accuracy = [&](dp::MechanismKind kind, double clip, int salt) {
    auto obf = make_obf(kind, 1.0 / 32.0, false, clip);
    auto factory = [&] { return obf->session(); };
    attack::ClassificationAttack attacker(
        db, attack::make_wfa_config(events, wfa_scale, 0xAB3 + salt));
    (void)attacker.train(secrets, factory);
    return attacker.exploit(secrets, visits, 0xAB400 + salt, factory);
  };
  for (double clip : {3.0, 6.0, 30.0, 100.0}) {
    clips.add_row({"Laplace", util::fmt_f(clip, 0) + " sigma",
                   util::fmt_pct(adaptive_accuracy(dp::MechanismKind::kLaplace,
                                                   clip, static_cast<int>(clip)))});
  }
  for (double clip : {3.0, 30.0}) {
    clips.add_row({"d*", util::fmt_f(clip, 0) + " sigma",
                   util::fmt_pct(adaptive_accuracy(dp::MechanismKind::kDStar,
                                                   clip, 40 + static_cast<int>(clip)))});
  }
  clips.print(std::cout);
  std::cout << "random guess: "
            << util::fmt_pct(1.0 / static_cast<double>(wfa_scale.sites)) << "\n";
  return 0;
}
