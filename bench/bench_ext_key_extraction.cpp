// Extension (paper Section X future work): "investigate the effectiveness
// of Aegis on more fine-grained attacks, e.g., stealing cryptographic
// keys". An RSA-style square-and-multiply exponentiation leaks its secret
// exponent bit-by-bit through the HPC counts; this bench measures the
// extraction attack clean and under both DP mechanisms.
#include "attack/kea.hpp"
#include "bench_common.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto events = bench::attack_events(db.model());

  attack::KeaConfig config;
  config.event_ids = events;
  config.key_bits = bench::scaled(40, scale, 24);
  config.training_keys = bench::scaled(16, scale, 10);
  config.traces_per_key = bench::scaled(6, scale, 4);
  config.epochs = bench::scaled(14, scale, 10);
  config.slices = bench::scaled(260, scale, 160);
  attack::KeyExtractionAttack attacker(db, config);
  const auto history = attacker.train();
  std::cout << "frame-classifier validation accuracy: "
            << util::fmt_pct(history.back().val_accuracy) << "\n";

  const std::size_t victim_keys = bench::scaled(5, scale, 3);
  const std::size_t runs = bench::scaled(2, scale, 1);
  const double clean = attacker.exploit(victim_keys, runs, 0xE1);
  std::cout << "clean key-bit recovery: " << util::fmt_pct(clean)
            << " (random guess on bits: ~50 %)\n";

  // Defense: the cover built for the website secret set protects every
  // vulnerable event, so the same obfuscator shields the crypto loop.
  attack::WfaScale site_scale;
  site_scale.sites = bench::scaled(10, scale, 8);
  site_scale.slices = config.slices;
  auto site_secrets = attack::make_wfa_secrets(site_scale);
  bench::OfflineSetup setup(site_secrets, scale);

  bench::print_header("Key extraction under Aegis");
  util::Table table({"mechanism", "epsilon", "key-bit recovery"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (double epsilon : {8.0, 1.0, 0.25}) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = epsilon;
      auto obf = setup.aegis.make_obfuscator(setup.result, site_secrets, mech);
      const double defended = attacker.exploit(
          victim_keys, runs, 0xE2, [&] { return obf->session(); });
      table.add_row({std::string(dp::to_string(kind)), util::fmt_f(epsilon, 2),
                     util::fmt_pct(defended)});
    }
  }
  table.print(std::cout);
  std::cout << "the matched-bits metric floors near ~50-60 % for random "
               "output (edit-distance partial credit); recovery at that "
               "level means the key is not extractable\n";
  return 0;
}
