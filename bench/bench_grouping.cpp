// Adaptive event-grouping report (src/pmu/backend/grouping.hpp).
//
// Packs the selected backend's vulnerable-event set (every guest-visible
// event) across the fixed / kernel / core / uncore counter banks and
// reports the multiplexing-slice count against the naive 4-at-a-time
// packing the pre-backend profiler used:
//
//   bench_grouping [output.json]    (stdout when no path is given)
//
// AEGIS_CPU selects the backend ("amd" default, "intel", or a model
// token). The run FAILS if the adaptive plan does not strictly beat the
// naive packing — the same invariant tests/grouping_test.cpp pins — so
// the CI artifact doubles as a gate.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "pmu/backend/grouping.hpp"

namespace aegis::bench {
namespace {

int run(int argc, char** argv) {
  const isa::CpuModel model = cpu_from_env();
  const pmu::backend::PmuBackend& backend = pmu::backend::backend_for(model);

  const auto vulnerable = pmu::backend::vulnerable_events(backend);
  const pmu::backend::GroupingPlan plan =
      pmu::backend::adaptive_grouping(backend, vulnerable);
  const std::size_t adaptive = plan.multiplex_slices();
  const std::size_t naive = pmu::backend::naive_slices(vulnerable.size());

  print_header("bench_grouping");
  std::cout << isa::to_string(model) << " (backend " << backend.id() << "): "
            << vulnerable.size() << " vulnerable events -> " << adaptive
            << " adaptive slices vs " << naive << " naive\n";

  if (adaptive >= naive) {
    std::cerr << "FAIL: adaptive grouping (" << adaptive
              << " slices) does not beat naive packing (" << naive << ")\n";
    return 1;
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "bench_grouping: cannot open " << argv[1] << "\n";
      return 1;
    }
    pmu::backend::write_grouping_report(backend, out);
    std::cout << "wrote " << argv[1] << "\n";
  } else {
    pmu::backend::write_grouping_report(backend, std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace aegis::bench

int main(int argc, char** argv) { return aegis::bench::run(argc, argv); }
