// Ablation: attack-model diversity. The paper argues (via Fig. 9c and the
// data-processing inequality) that "our defense is effective for all
// machine learning based attack models". This bench cross-checks the MLP
// results with two structurally different learners — Gaussian naive Bayes
// (generative) and k-nearest-neighbours (non-parametric) — clean and under
// the defense.
#include "attack/dataset.hpp"
#include "bench_common.hpp"
#include "ml/gaussian_nb.hpp"
#include "ml/knn.hpp"

using namespace aegis;

namespace {

struct LabelledFeatures {
  ml::FeatureMatrix X;
  ml::Labels y;
};

LabelledFeatures featurize(const trace::TraceSet& set, std::size_t windows,
                           const trace::Standardizer& standardizer) {
  LabelledFeatures out;
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::vector<double> f = set.traces[i].window_features(windows);
    standardizer.apply(f);
    out.X.push_back(std::move(f));
    out.y.push_back(set.labels[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(180, scale, 100);
  constexpr std::size_t kWindows = 24;

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(12, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(18, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();

  attack::CollectionConfig collect;
  collect.event_ids = bench::attack_events(db.model());
  collect.traces_per_secret = wfa_scale.traces_per_site;

  dp::MechanismConfig mech;
  mech.kind = dp::MechanismKind::kLaplace;
  mech.epsilon = 0.25;
  auto obf = setup.aegis.make_obfuscator(setup.result, secrets, mech);

  // The realistic threat (Fig. 9a): every model family trains on CLEAN
  // template traces; exploitation happens against clean and defended
  // victim runs.
  const trace::TraceSet train_set = collect_traces(db, secrets, collect, nullptr);
  attack::CollectionConfig test_collect = collect;
  test_collect.traces_per_secret = bench::scaled(4, scale, 3);
  test_collect.seed = 0x7E57ULL;
  const trace::TraceSet clean_test =
      collect_traces(db, secrets, test_collect, nullptr);
  test_collect.seed = 0x7E58ULL;
  const trace::TraceSet defended_test =
      collect_traces(db, secrets, test_collect, [&] { return obf->session(); });

  ml::FeatureMatrix raw;
  for (const auto& t : train_set.traces) raw.push_back(t.window_features(kWindows));
  trace::Standardizer standardizer;
  standardizer.fit(raw);
  const LabelledFeatures train = featurize(train_set, kWindows, standardizer);
  const LabelledFeatures clean_f = featurize(clean_test, kWindows, standardizer);
  const LabelledFeatures defended_f =
      featurize(defended_test, kWindows, standardizer);

  ml::MlpConfig mlp_config;
  mlp_config.epochs = bench::scaled(22, scale, 14);
  ml::MlpClassifier mlp(train.X.front().size(),
                        static_cast<std::size_t>(train_set.num_classes),
                        mlp_config);
  (void)mlp.fit(train.X, train.y, {}, {});
  ml::GaussianNbClassifier nb;
  nb.fit(train.X, train.y, train_set.num_classes);
  ml::KnnClassifier knn(5);
  knn.fit(train.X, train.y, train_set.num_classes);

  const std::array<double, 3> clean{mlp.accuracy(clean_f.X, clean_f.y),
                                    nb.accuracy(clean_f.X, clean_f.y),
                                    knn.accuracy(clean_f.X, clean_f.y)};
  const std::array<double, 3> defended{mlp.accuracy(defended_f.X, defended_f.y),
                                       nb.accuracy(defended_f.X, defended_f.y),
                                       knn.accuracy(defended_f.X, defended_f.y)};

  bench::print_header(
      "Ablation — defense generality across attack-model families (WFA)");
  util::Table table({"model", "clean acc", "defended acc (Laplace eps=2^-2)"});
  const char* names[] = {"MLP (CNN-analog)", "Gaussian naive Bayes",
                         "k-nearest neighbours"};
  for (std::size_t m = 0; m < 3; ++m) {
    table.add_row({names[m], util::fmt_pct(clean[m]), util::fmt_pct(defended[m])});
  }
  table.print(std::cout);
  std::cout << "random guess: "
            << util::fmt_pct(1.0 / static_cast<double>(wfa_scale.sites))
            << ". paper: the DP noise bounds I(X';Y), so EVERY learner "
               "degrades — not just the one used in the evaluation\n";
  return 0;
}
