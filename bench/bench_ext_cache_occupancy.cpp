// Extension (paper Section X future work): "generalize our framework to
// more micro-architectural attacks, e.g., cache and memory side channels".
//
// A co-resident attacker mounts the cache-occupancy website-fingerprinting
// attack (the paper's [63]): each slice it sweeps an LLC-sized probe buffer
// and measures its own misses, which track the victim's cache pressure —
// no HPC access needed. The Event Obfuscator's gadget segments touch memory
// too, so the SAME noise injection (sized for the HPC events) obfuscates
// this channel as a side effect.
#include "bench_common.hpp"
#include "ml/mlp.hpp"
#include "trace/trace.hpp"

using namespace aegis;

namespace {

constexpr sim::RegionId kProbeRegion = 9000;
constexpr std::size_t kWindows = 24;

// aegis-rng: stream(ext-cache-occupancy-collect-occupancy)
trace::TraceSet collect_occupancy(
    const pmu::EventDatabase& db,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    std::size_t traces_per_secret, std::uint64_t seed,
    const attack::AgentFactory& factory) {
  trace::TraceSet set;
  set.num_classes = static_cast<int>(secrets.size());
  util::Rng rng(seed);
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    for (std::size_t v = 0; v < traces_per_secret; ++v) {
      const std::uint64_t visit_seed = rng.next_u64();
      sim::VirtualMachine vm(sim::VmConfig{}, visit_seed ^ 0xF00DULL);
      sim::HostMonitor monitor(db, visit_seed ^ 0xBEEFULL);
      sim::CacheProbe probe(kProbeRegion,
                            sim::MicroArchState::kLlcBytes * 0.8);
      const sim::MonitorResult result = monitor.monitor_occupancy(
          vm, secrets[s]->visit(visit_seed), probe, secrets[s]->trace_slices(),
          factory ? factory() : sim::SliceAgent{});
      trace::Trace t;
      t.samples = result.samples;
      set.traces.push_back(std::move(t));
      set.labels.push_back(static_cast<int>(s));
    }
  }
  return set;
}

double occupancy_attack_accuracy(
    const pmu::EventDatabase& db,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    std::size_t traces_per_secret, std::size_t test_visits,
    const attack::AgentFactory& victim_factory, double scale) {
  // Train on clean occupancy traces (the realistic attacker).
  const trace::TraceSet train_set =
      collect_occupancy(db, secrets, traces_per_secret, 0x0CC, nullptr);
  ml::FeatureMatrix X;
  for (const auto& t : train_set.traces) X.push_back(t.window_features(kWindows));
  trace::Standardizer standardizer;
  standardizer.fit(X);
  standardizer.apply_all(X);
  ml::MlpConfig mlp_config;
  mlp_config.epochs = bench::scaled(22, scale, 14);
  ml::MlpClassifier model(X.front().size(),
                          static_cast<std::size_t>(train_set.num_classes),
                          mlp_config);
  (void)model.fit(X, train_set.labels, {}, {});

  const trace::TraceSet test_set =
      collect_occupancy(db, secrets, test_visits, 0x0CD, victim_factory);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    std::vector<double> f = test_set.traces[i].window_features(kWindows);
    standardizer.apply(f);
    if (model.predict(f) == test_set.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test_set.size());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(180, scale, 100);

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(10, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(16, scale, 10);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);
  bench::OfflineSetup setup(secrets, scale);
  const auto& db = setup.aegis.database();
  const std::size_t test_visits = bench::scaled(4, scale, 3);

  bench::print_header(
      "Extension — cache-occupancy fingerprinting (no HPC access)");
  const double clean = occupancy_attack_accuracy(
      db, secrets, wfa_scale.traces_per_site, test_visits, nullptr, scale);
  std::cout << "clean occupancy-channel WFA accuracy: " << util::fmt_pct(clean)
            << " (random " << util::fmt_pct(1.0 / wfa_scale.sites) << ")\n";

  util::Table table({"mechanism", "epsilon", "occupancy attack acc"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (double epsilon : {1.0, 0.25}) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = epsilon;
      auto obf = setup.aegis.make_obfuscator(setup.result, secrets, mech);
      const double acc = occupancy_attack_accuracy(
          db, secrets, wfa_scale.traces_per_site, test_visits,
          [&] { return obf->session(); }, scale);
      table.add_row({std::string(dp::to_string(kind)), util::fmt_f(epsilon, 2),
                     util::fmt_pct(acc)});
    }
  }
  table.print(std::cout);
  std::cout << "the HPC-calibrated gadget noise also thrashes the shared "
               "caches, degrading a channel the defense was not explicitly "
               "sized for — the paper's conjectured generalization\n";
  return 0;
}
