// Table III + Section VIII-B: Event Fuzzer evaluation on both processors.
// Paper: Intel — 3386 cleaned instructions, 3386^2 = 11,464,996 gadget
// space, 738 event repetitions, 9.3 h at 253,314 gadgets/s; time split
// <1 s cleanup / 33210 s generation+execution / 132 s confirmation / 60 s
// filtering. AMD — 3407^2 = 11,607,649, 137 events, 2.2 h at 235,449/s.
// Per-event usable gadgets: mean/median 892/505 (Intel), 617/440 (AMD).
#include <chrono>

#include "bench_common.hpp"
#include "fuzzer/fuzzer.hpp"
#include "util/thread_pool.hpp"
#include "fuzzer/set_cover.hpp"
#include "profiler/profiler.hpp"
#include "util/stats.hpp"
#include "workload/website.hpp"

using namespace aegis;

namespace {

void fuzz_cpu(isa::CpuModel model, double scale) {
  const auto& db = pmu::backend::backend_for(model).database();
  const auto spec = isa::IsaSpecification::generate(model);

  // Vulnerable events from warm-up profiling (the paper's repetition count).
  profiler::ProfilerConfig warm_config;
  warm_config.warmup_slices = bench::scaled(60, scale, 30);
  warm_config.warmup_repeats = 3;
  profiler::ApplicationProfiler profiler(db, warm_config);
  const workload::WebsiteWorkload app(0, warm_config.warmup_slices);
  const auto survivors = profiler.warmup(app).surviving;

  fuzzer::FuzzerConfig config;
  config.reset_sample = bench::scaled(40, scale, 24);
  config.trigger_sample = bench::scaled(40, scale, 24);
  config.repeats = 8;
  config.num_threads = bench::threads_from_env();
  fuzzer::EventFuzzer fuzz(db, spec, config);
  const fuzzer::FuzzResult result = fuzz.run(survivors);

  bench::print_header(std::string("Table III — ") + std::string(isa::to_string(model)));
  std::cout << "campaign workers: " << util::ThreadPool::resolve(config.num_threads)
            << " (AEGIS_THREADS=" << config.num_threads << ", 0 = hardware)\n";
  std::cout << "cleaned instructions: " << result.cleaned_instructions
            << "  -> full gadget space "
            << util::fmt_group(static_cast<long long>(result.total_gadget_space))
            << " (paper: " << (isa::vendor_of(model) == isa::Vendor::kIntel
                                   ? "11,464,996"
                                   : "11,607,649")
            << ")\n";
  std::cout << "event repetitions (vulnerable events): " << survivors.size()
            << "\n";
  std::cout << "sampled gadget grid executed: "
            << util::fmt_group(static_cast<long long>(result.executed_gadgets))
            << " pair-executions\n";

  util::Table timing({"step", "seconds", "share"});
  const auto& t = result.timing;
  const double total = t.cleanup_seconds + t.generation_execution_seconds +
                       t.confirmation_seconds + t.filtering_seconds;
  auto row = [&](const char* step, double secs) {
    timing.add_row({step, util::fmt_f(secs, 3), util::fmt_pct(secs / total)});
  };
  row("Cleanup", t.cleanup_seconds);
  row("Generation + Execution", t.generation_execution_seconds);
  row("Confirmation", t.confirmation_seconds);
  row("Filtering", t.filtering_seconds);
  timing.print(std::cout);
  const double throughput =
      static_cast<double>(result.executed_gadgets) /
      std::max(t.generation_execution_seconds, 1e-9);
  std::cout << "simulated-gadget throughput: "
            << util::fmt_group(static_cast<long long>(throughput))
            << " gadget executions/s (paper real-HW: 253,314 Intel / 235,449 "
               "AMD)\n";

  // Section VIII-B: per-event usable gadget statistics.
  std::vector<double> per_event;
  std::size_t with_gadgets = 0;
  const fuzzer::EventFuzzReport* most = nullptr;
  for (const auto& report : result.reports) {
    per_event.push_back(static_cast<double>(report.confirmed.size()));
    if (!report.confirmed.empty()) ++with_gadgets;
    if (most == nullptr || report.confirmed.size() > most->confirmed.size()) {
      most = &report;
    }
  }
  std::cout << "events with usable gadgets: " << with_gadgets << " / "
            << result.reports.size() << "\n";
  std::cout << "usable gadgets per event: mean " << util::fmt_f(util::mean(per_event), 1)
            << ", median " << util::fmt_f(util::median(per_event), 1)
            << " (of a " << config.reset_sample * config.trigger_sample
            << "-pair sampled grid; paper, full grid: mean/median "
            << (isa::vendor_of(model) == isa::Vendor::kIntel ? "892/505"
                                                             : "617/440")
            << ")\n";
  if (most != nullptr && !most->confirmed.empty()) {
    std::cout << "event with the most gadgets: " << db.by_id(most->event_id).name
              << " (" << most->confirmed.size() << "; paper: "
              << (isa::vendor_of(model) == isa::Vendor::kIntel
                      ? "MEM_LOAD_UOPS_RETIRED:L1_HIT, 9934"
                      : "RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR, 6219")
              << ")\n";
  }

  const fuzzer::GadgetCover cover = fuzzer::minimal_gadget_cover(result);
  std::cout << "minimal gadget cover: " << cover.gadgets.size()
            << " gadgets for " << cover.covered_events.size()
            << " events, uncovered " << cover.uncovered_events.size()
            << " (paper: 43 gadgets cover all 137)\n";
}

/// AEGIS_THREAD_SWEEP=1: re-runs the AMD fuzz at 1/2/4 workers and prints
/// the wall-clock scaling of the generation+execution step (the acceptance
/// check for the parallel campaign engine: >= 2x at 4 workers on >= 4
/// cores). The FuzzResult is bit-identical at every worker count, so the
/// sweep also cross-checks the determinism contract.
void thread_sweep(double scale) {
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  fuzzer::FuzzerConfig config;
  config.reset_sample = bench::scaled(40, scale, 24);
  config.trigger_sample = bench::scaled(40, scale, 24);
  config.repeats = 8;
  const std::vector<std::uint32_t> events = bench::attack_events(db.model());

  bench::print_header("Parallel campaign thread sweep (AMD, attack events)");
  util::Table table({"workers", "total s", "gen+exec s", "confirm s",
                     "speedup vs 1", "identical"});
  double serial_total = 0.0;
  std::size_t baseline_confirmed = 0;
  for (std::size_t threads : {1u, 2u, 4u}) {
    config.num_threads = threads;
    fuzzer::EventFuzzer fuzz(db, spec, config);
    const auto t0 = std::chrono::steady_clock::now();
    const fuzzer::FuzzResult result = fuzz.run(events);
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::size_t confirmed = 0;
    for (const auto& r : result.reports) confirmed += r.confirmed.size();
    if (threads == 1) {
      serial_total = total;
      baseline_confirmed = confirmed;
    }
    table.add_row({std::to_string(threads), util::fmt_f(total, 2),
                   util::fmt_f(result.timing.generation_execution_seconds, 2),
                   util::fmt_f(result.timing.confirmation_seconds, 2),
                   util::fmt_f(serial_total / total, 2),
                   confirmed == baseline_confirmed ? "yes" : "NO"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  fuzz_cpu(isa::CpuModel::kAmdEpyc7252, scale);
  fuzz_cpu(isa::CpuModel::kIntelXeonE5_1650, scale);
  if (const char* sweep = std::getenv("AEGIS_THREAD_SWEEP");
      sweep != nullptr && sweep[0] == '1') {
    thread_sweep(scale);
  }
  return 0;
}
