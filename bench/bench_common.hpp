// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench accepts a scale factor (env AEGIS_SCALE or argv[1], default
// 1.0) multiplying trace counts / sweep sizes; the default is sized so the
// whole bench suite completes in minutes while preserving the shape of the
// paper's tables and figures. EXPERIMENTS.md records paper-vs-measured
// values at default scale.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "attack/ksa.hpp"
#include "attack/mea.hpp"
#include "attack/wfa.hpp"
#include "core/aegis.hpp"
#include "pmu/backend/registry.hpp"
#include "util/table.hpp"

namespace aegis::bench {

inline double scale_from_args(int argc, char** argv) {
  if (const char* env = std::getenv("AEGIS_SCALE")) {
    return std::atof(env) > 0 ? std::atof(env) : 1.0;
  }
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0) return s;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base, double scale,
                          std::size_t minimum = 1) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return v < minimum ? minimum : v;
}

/// Campaign worker count for benches: env AEGIS_THREADS, default 0
/// (= hardware concurrency). Results are identical for every value.
inline std::size_t threads_from_env() {
  if (const char* env = std::getenv("AEGIS_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Bench CPU model: env AEGIS_CPU ("amd", "intel", or a model token),
/// default the paper's AMD EPYC 7252 testbed. The CI Intel leg steers the
/// bench smoke through the Intel backend with this.
inline isa::CpuModel cpu_from_env() {
  return pmu::backend::model_from_env(isa::CpuModel::kAmdEpyc7252);
}

/// The backend's default attack-event set for `model` (kAmdAttackEvents on
/// AMD; the Xeon E5 equivalents on Intel).
inline std::vector<std::uint32_t> attack_events(isa::CpuModel model) {
  return pmu::backend::backend_for(model).attack_events();
}

/// The offline pipeline at bench scale: shared by the defense benches.
struct OfflineSetup {
  core::Aegis aegis{cpu_from_env()};
  core::OfflineResult result;

  explicit OfflineSetup(
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      double scale) {
    core::OfflineConfig config = core::make_quick_offline_config(11);
    config.profiler.ranking_runs_per_secret = scaled(5, scale, 3);
    config.fuzzer.reset_sample = scaled(40, scale, 24);
    config.fuzzer.trigger_sample = scaled(40, scale, 24);
    config.fuzz_top_events = 0;  // fuzz every warm-up survivor
    result = aegis.analyze(*secrets.front(), secrets, config);
  }
};

}  // namespace aegis::bench
