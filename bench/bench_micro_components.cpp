// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
//   * Laplace sampling — the paper's noise calculator precomputes a buffer
//     with the direct uniform->Laplace transform because per-draw library
//     APIs are too slow for high injection rates (Section VII-C);
//   * gadget execution throughput in the fuzzing harness (Table III's
//     generation+execution step dominates the fuzz);
//   * VM slice execution and mechanism stepping.
#include <benchmark/benchmark.h>

#include <random>

#include "dp/dstar.hpp"
#include "dp/laplace.hpp"
#include "fuzzer/parallel_campaign.hpp"
#include "obf/noise_calculator.hpp"
#include "pmu/backend/registry.hpp"
#include "sim/gadget_runner.hpp"
#include "sim/virtual_machine.hpp"
#include "util/thread_pool.hpp"
#include "workload/website.hpp"

using namespace aegis;

namespace {

void BM_LaplaceBufferedTransform(benchmark::State& state) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kLaplace;
  config.epsilon = 1.0;
  obf::NoiseCalculator calc(config, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.noise_for(0.0));
  }
}
BENCHMARK(BM_LaplaceBufferedTransform);

void BM_LaplaceStdLibraryApi(benchmark::State& state) {
  // The comparison point: composing std::exponential_distribution draws per
  // sample, as a library-API implementation would.
  // aegis-lint: random-ok(benchmark-only comparison point; fixed seed)
  std::mt19937_64 engine(1);
  std::exponential_distribution<double> expo(1.0);
  std::bernoulli_distribution sign(0.5);
  for (auto _ : state) {
    const double mag = expo(engine);
    benchmark::DoNotOptimize(sign(engine) ? mag : -mag);
  }
}
BENCHMARK(BM_LaplaceStdLibraryApi);

void BM_DStarStep(benchmark::State& state) {
  dp::DStarMechanism mech(1.0, 2);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech.noisy_value(x));
    x += 1.0;
    if (x > 4096.0) {
      state.PauseTiming();
      mech.reset();
      x = 0.0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DStarStep);

void BM_GadgetExecution(benchmark::State& state) {
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  sim::GadgetRunner runner(db, spec, 3);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*db.find(name));
  runner.program(events);
  std::vector<std::uint32_t> gadget;
  for (const auto& v : spec.variants()) {
    if (v.legal() && gadget.size() < 2) gadget.push_back(v.uid);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.execute_once(gadget, 16.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GadgetExecution);

void BM_VmSliceWithWorkload(benchmark::State& state) {
  const workload::WebsiteWorkload site(0, 300);
  sim::VirtualMachine vm(sim::VmConfig{}, 4);
  auto source = site.visit(9);
  std::size_t t = 0;
  for (auto _ : state) {
    for (auto& b : source(t % 300)) vm.submit(std::move(b));
    benchmark::DoNotOptimize(vm.run_slice());
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmSliceWithWorkload);

void BM_ThreadPoolParallelForOverhead(benchmark::State& state) {
  // Dispatch + join cost of an empty index-space job: the floor under
  // which sharding a campaign stage cannot pay off.
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(64, [](std::size_t) {});
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolParallelForOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelGenerationStep(benchmark::State& state) {
  // The fuzzer's dominant stage (Table III generation+execution) through
  // the sharded campaign engine at 1/2/4 workers. Work-stealing keeps the
  // shards balanced; the output is identical at every worker count.
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  fuzzer::FuzzerConfig config;
  config.num_threads = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*db.find(name));
  std::vector<std::uint32_t> legal;
  for (const auto& v : spec.variants()) {
    if (v.legal() && legal.size() < 16) legal.push_back(v.uid);
  }
  util::ThreadPool pool(config.num_threads);
  fuzzer::ParallelCampaign campaign(db, spec, config, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.generate(events, legal, legal));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(legal.size() * legal.size()));
}
BENCHMARK(BM_ParallelGenerationStep)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_NoiseBufferRefill(benchmark::State& state) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kLaplace;
  config.epsilon = 1.0;
  obf::NoiseCalculator calc(config, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        calc.precompute_batch(static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NoiseBufferRefill)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
