// Fig. 3: HPC event values per secret are Gaussian-like.
//   (a) histogram of DATA_CACHE_REFILLS_FROM_SYSTEM on one site,
//   (b) Q-Q correlation against N(0,1),
//   (c) fitted per-site Gaussians for 10 websites.
#include "attack/dataset.hpp"
#include "bench_common.hpp"
#include "trace/gaussian.hpp"
#include "trace/pca.hpp"
#include "util/stats.hpp"
#include "workload/website.hpp"

using namespace aegis;

// aegis-rng: stream(fig3-value-distribution-main)
int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const auto& db = pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252).database();
  const std::uint32_t refills = *db.find("DATA_CACHE_REFILLS_FROM_SYSTEM");
  const std::size_t slices = bench::scaled(240, scale, 120);
  const std::size_t runs = bench::scaled(60, scale, 30);
  const std::size_t windows = 24;

  attack::CollectionConfig config;
  config.event_ids = {refills};

  // Per-site feature: the PCA-compressed windowed series of the event,
  // exactly what the profiler models (Section V-B).
  auto collect_features = [&](std::size_t site_id, std::size_t n,
                              std::vector<std::vector<double>>& pooled_out) {
    const workload::WebsiteWorkload site(site_id, slices);
    util::Rng rng(0xF16'3ULL + site_id);
    for (std::size_t r = 0; r < n; ++r) {
      const trace::Trace t =
          attack::collect_one(db, site, config, rng.next_u64());
      pooled_out.push_back(t.window_features(windows));
    }
  };

  bench::print_header("Fig. 3a — event value distribution on facebook.com");
  std::vector<std::vector<double>> fb_features;
  collect_features(2, runs, fb_features);  // site 2 = facebook.com
  trace::Pca pca;
  pca.fit(fb_features, 1);
  std::vector<double> fb_values;
  for (const auto& f : fb_features) fb_values.push_back(pca.first_component(f));

  const util::Histogram hist = util::make_histogram(fb_values, 12);
  const double peak = static_cast<double>(
      *std::max_element(hist.counts.begin(), hist.counts.end()));
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const double lo = hist.lo + (hist.hi - hist.lo) * b / hist.counts.size();
    std::printf("%10.1f | %-40s %zu\n", lo,
                std::string(static_cast<std::size_t>(
                                40.0 * hist.counts[b] / peak),
                            '#')
                    .c_str(),
                hist.counts[b]);
  }

  bench::print_header("Fig. 3b — Q-Q correlation against N(0,1)");
  const double qq = util::qq_normal_correlation(fb_values);
  std::cout << "Q-Q correlation: " << util::fmt_f(qq, 4)
            << "  (1.0 = perfectly Gaussian; paper reports a straight Q-Q "
               "line)\n";

  bench::print_header("Fig. 3c — per-site Gaussian fits (10 websites)");
  // Shared PCA basis so the per-site distributions are comparable.
  std::vector<std::vector<double>> all_features;
  std::vector<std::vector<std::vector<double>>> per_site(10);
  for (std::size_t s = 0; s < 10; ++s) {
    collect_features(s, bench::scaled(30, scale, 15), per_site[s]);
    all_features.insert(all_features.end(), per_site[s].begin(), per_site[s].end());
  }
  trace::Pca shared;
  shared.fit(all_features, 1);
  util::Table table({"site", "mu", "sigma", "qq-corr"});
  std::vector<std::vector<double>> values_by_site;
  for (std::size_t s = 0; s < 10; ++s) {
    std::vector<double> values;
    for (const auto& f : per_site[s]) values.push_back(shared.first_component(f));
    const util::GaussianFit fit = util::fit_gaussian(values);
    table.add_row({workload::WebsiteWorkload(s, slices).name(),
                   util::fmt_f(fit.mu, 1), util::fmt_f(fit.sigma, 1),
                   util::fmt_f(util::qq_normal_correlation(values), 3)});
    values_by_site.push_back(std::move(values));
  }
  table.print(std::cout);
  const trace::SecretGaussianModel model =
      trace::SecretGaussianModel::fit(values_by_site);
  std::cout << "mutual information over the 10 sites: "
            << util::fmt_f(trace::mutual_information_eq1(model), 3) << " of "
            << util::fmt_f(std::log2(10.0), 3)
            << " bits (distributions overlap slightly but classify easily — "
               "the paper's Fig. 3c observation)\n";
  return 0;
}
