// Extension: cross-vendor generality. The paper's case studies run on the
// AMD EPYC 7252; its methodology claims generality across processors
// (Section V profiles both vendors, Table III fuzzes both). This bench
// runs the full attack-and-defend loop on the Intel Xeon E5-1650 substrate
// with Intel-named events, demonstrating that nothing in the pipeline is
// vendor-specific.
#include "bench_common.hpp"

using namespace aegis;

int main(int argc, char** argv) {
  const double scale = bench::scale_from_args(argc, argv);
  const std::size_t slices = bench::scaled(180, scale, 100);

  core::Aegis engine(isa::CpuModel::kIntelXeonE5_1650);
  const auto& db = engine.database();
  std::cout << "substrate: " << isa::to_string(engine.cpu()) << " — "
            << db.size() << " events, " << engine.specification().legal_count()
            << " legal variants\n";

  // The Intel-side monitored quartet (same roles as the AMD events).
  std::vector<std::uint32_t> events;
  for (const char* name :
       {"UOPS_RETIRED:ALL", "MEM_UOPS_RETIRED:ALL_LOADS",
        "MEM_LOAD_UOPS_RETIRED:L1_HIT", "LONGEST_LAT_CACHE:MISS"}) {
    events.push_back(*db.find(name));
  }

  attack::WfaScale wfa_scale;
  wfa_scale.sites = bench::scaled(12, scale, 8);
  wfa_scale.traces_per_site = bench::scaled(14, scale, 10);
  wfa_scale.epochs = bench::scaled(20, scale, 12);
  wfa_scale.slices = slices;
  auto secrets = attack::make_wfa_secrets(wfa_scale);

  attack::ClassificationAttack attacker(db,
                                        attack::make_wfa_config(events, wfa_scale));
  (void)attacker.train(secrets);
  const double clean = attacker.exploit(secrets, 2, 0x17E1);
  std::cout << "clean WFA accuracy on Intel events: " << util::fmt_pct(clean)
            << "\n";

  // The offline pipeline fuzzes the (much larger) Intel survivor set.
  core::OfflineConfig config = core::make_quick_offline_config();
  config.fuzz_top_events = 0;
  const core::OfflineResult analysis =
      engine.analyze(*secrets[0], secrets, config);
  std::cout << "offline: " << analysis.warmup.surviving.size()
            << " vulnerable events (paper: ~738 on Intel), cover of "
            << analysis.cover.gadgets.size() << " gadgets, "
            << analysis.cover.uncovered_events.size() << " uncovered\n";

  bench::print_header("Defense on the Intel substrate");
  util::Table table({"mechanism", "epsilon", "attack acc"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (double epsilon : {8.0, 1.0, 0.25}) {
      dp::MechanismConfig mech;
      mech.kind = kind;
      mech.epsilon = epsilon;
      auto obf = engine.make_obfuscator(analysis, secrets, mech);
      const double acc =
          attacker.exploit(secrets, 2, 0x17E2, [&] { return obf->session(); });
      table.add_row({std::string(dp::to_string(kind)), util::fmt_f(epsilon, 2),
                     util::fmt_pct(acc)});
    }
  }
  table.print(std::cout);
  std::cout << "random guess: "
            << util::fmt_pct(1.0 / static_cast<double>(wfa_scale.sites))
            << " — the pipeline is vendor-agnostic end to end\n";
  return 0;
}
